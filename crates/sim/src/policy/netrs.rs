//! In-network replica selection: the NetRS-ToR and NetRS-ILP schemes.
//!
//! Both run the same data plane — requests detour through an RSNode whose
//! accelerator picks the replica, responses detour back through it so a
//! clone can update the selector — and differ only in how the controller
//! places RSNodes: NetRS-ToR pins one to every client ToR, NetRS-ILP
//! optimizes placement (from an oracle traffic matrix, or periodically
//! from ToR monitor measurements). [`InNetwork`] holds the shared control
//! and device state; the two policy types wrap it.

use std::collections::BTreeSet;

use netrs::{
    ControllerConfig, NetRsController, PlanDiff, PlanSolveStats, Rsp, TrafficGroups, TrafficMatrix,
};
use netrs_kvstore::ServerId;
use netrs_netdev::{
    Accelerator, CacheStats, IngressAction, Monitor, NetRsRules, PacketMeta, RsOperator,
};
use netrs_selection::Feedback;
use netrs_simcore::{
    DeviceCounter, DeviceId, DeviceProbe, EventQueue, SimDuration, SimRng, SimTime,
};
use netrs_topology::{FatTree, HostId, SwitchId};
use netrs_wire::{MagicField, RsnodeId};

use crate::cluster::{Ev, ReqId};
use crate::config::{PlanSource, SimConfig};
use crate::dense::SwitchTable;
use crate::fabric::HopSink;
use crate::obs::{CacheRecord, PlanEventRecord, SolveRecord};
use crate::server::ServerToken;
use crate::state::{flow_hash, Core, REQ_BYTES, RESP_BYTES};

use super::{ControlStats, ReplyInfo, SchemePolicy};

/// Builds the decision-audit record for a plan event, from the diff the
/// solve produced and the plan it installed.
fn plan_record(
    t_ns: u64,
    trigger: &str,
    switch: Option<u32>,
    stats: Option<PlanSolveStats>,
    diff: PlanDiff,
    plan: &Rsp,
    rules_recompiled: u32,
) -> PlanEventRecord {
    PlanEventRecord {
        t_ns,
        trigger: trigger.into(),
        switch,
        solve: stats.map(|s| SolveRecord {
            greedy: s.greedy,
            variables: s.variables as u64,
            constraints: s.constraints as u64,
            lp_iterations: s.lp_iterations,
            branch_nodes: s.branch_nodes,
            objective: s.objective,
        }),
        reassigned: diff.reassigned,
        newly_assigned: diff.newly_assigned,
        unassigned: diff.unassigned,
        rsnodes_added: diff.rsnodes_added.iter().map(|sw| sw.0).collect(),
        rsnodes_removed: diff.rsnodes_removed.iter().map(|sw| sw.0).collect(),
        rsnodes: plan.rsnodes().len() as u32,
        drs_groups: plan.drs.len() as u32,
        rules_recompiled,
    }
}

/// Control-plane and device state shared by both in-network schemes: the
/// controller with its installed plan, the deployed switch rules, the
/// live and retired operators, and the ToR monitors.
struct InNetwork {
    groups: TrafficGroups,
    controller: NetRsController,
    rules: SwitchTable<NetRsRules>,
    operators: SwitchTable<RsOperator>,
    monitors: SwitchTable<Monitor>,
    /// Retired accelerators kept so end-of-run statistics still see the
    /// work they performed.
    retired_operators: Vec<RsOperator>,
    /// Per-operator busy counter at the last overload check, indexed by
    /// switch id (0 until first checked).
    last_accel_busy: Vec<u128>,
    /// Switches whose operator fail-stopped (fault plan) and has not
    /// recovered: packets steered there blackhole until the controller
    /// detects the failure and reroutes.
    dead_operators: BTreeSet<SwitchId>,
    /// The bootstrap plan's audit payload, held until `prime` (the first
    /// hook with mutable core access) can emit it. `None` afterwards.
    bootstrap: Option<(PlanDiff, Option<PlanSolveStats>)>,
}

impl InNetwork {
    /// Builds the control plane with its initial plan: the oracle ILP
    /// placement when `oracle` is set, the every-client-ToR plan
    /// otherwise (NetRS-ToR, and the monitored bootstrap before the
    /// first measurement window completes).
    fn new<D: DeviceProbe>(core: &Core<D>, root: &SimRng, oracle: bool) -> Self {
        let cfg = &core.cfg;
        let client_hosts: Vec<HostId> = core.clients.iter().map(|c| c.host).collect();
        let groups = TrafficGroups::build(&core.fabric.topo, &client_hosts, cfg.granularity);
        let mut controller = NetRsController::new(
            core.fabric.topo.clone(),
            ControllerConfig {
                constraints: cfg.plan.clone(),
            },
        );
        let bootstrap = if oracle {
            let traffic = TrafficMatrix::oracle(
                &core.fabric.topo,
                &groups,
                &core.client_rates(),
                &core.server_hosts,
            );
            let (diff, stats) = controller.plan_with_stats(&groups, &traffic, cfg.plan_solver);
            (diff, Some(stats))
        } else {
            let rsp = Rsp::tor_plan(&groups);
            let diff = PlanDiff::between(&Rsp::default(), &rsp);
            controller.install(rsp);
            (diff, None)
        };
        let num_switches = core.fabric.topo.num_switches();
        let rules = SwitchTable::from_map(num_switches, controller.deploy(&groups));
        let mut net = InNetwork {
            groups,
            controller,
            rules,
            operators: SwitchTable::new(num_switches),
            monitors: SwitchTable::new(num_switches),
            retired_operators: Vec::new(),
            last_accel_busy: vec![0; num_switches as usize],
            dead_operators: BTreeSet::new(),
            bootstrap: Some(bootstrap),
        };
        net.rebuild_operators(cfg, root.clone());

        // Monitors sit on every ToR with attached clients.
        for info in net.groups.iter() {
            let marker = net.controller.marker_of_rack(info.tor.0);
            net.monitors
                .get_or_insert_with(info.tor, || Monitor::new(marker));
        }
        net
    }

    /// (Re)creates operator state for the current plan: new RSNodes start
    /// with fresh selectors (the paper's §II transient), retained RSNodes
    /// keep their local information.
    fn rebuild_operators(&mut self, cfg: &SimConfig, root: SimRng) {
        let rsnodes = self.controller.current_plan().rsnodes();
        // Each RSNode's C3 concurrency estimate is the RSNode count: the
        // plan's operators contend for the same servers.
        let n = rsnodes.len().max(1) as f64;
        let mut next = SwitchTable::new(self.operators.capacity());
        for sw in rsnodes {
            let op = self.operators.remove(sw).unwrap_or_else(|| {
                let op = RsOperator::new(
                    cfg.selector.build_with_concurrency(
                        cfg.c3,
                        n,
                        root.fork(30_000 + u64::from(sw.0)),
                    ),
                    cfg.accelerator,
                );
                // Fresh RSNodes start with an empty hot-key cache when
                // one is configured (retained RSNodes keep theirs).
                match cfg.hot_cache {
                    Some(c) => op.with_cache(c),
                    None => op,
                }
            });
            next.insert(sw, op);
        }
        // Keep retired accelerators so end-of-run statistics still see
        // the work they performed. The drain runs in ascending switch
        // order, which fixes the float summation order in
        // `control_stats`.
        self.retired_operators
            .extend(self.operators.drain().map(|(_, op)| op));
        self.operators = next;
    }

    /// Schedules the overload-check timer, if the config has an overload
    /// policy.
    fn prime_overload<D: DeviceProbe>(&self, core: &Core<D>, queue: &mut EventQueue<Ev>) {
        if let Some(policy) = core.cfg.overload {
            queue.schedule_after(policy.interval, Ev::OverloadCheck);
        }
    }

    /// Emits the bootstrap plan's decision-audit record, once, if a
    /// control sink is attached (called from `prime`, the first hook
    /// with mutable core access; the plan itself was computed at
    /// construction, before sim time started).
    fn audit_bootstrap<D: DeviceProbe>(&mut self, core: &mut Core<D>) {
        let Some((diff, stats)) = self.bootstrap.take() else {
            return;
        };
        if core.control_log().is_some() {
            let rec = plan_record(
                0,
                "initial",
                None,
                stats,
                diff,
                self.controller.current_plan(),
                core.fabric.topo.num_switches(),
            );
            if let Some(log) = core.control_log() {
                log.plan_event(rec);
            }
        }
    }

    /// Sends a freshly issued read into the network: the client's ToR
    /// classifies it and either hands it to the local accelerator,
    /// forwards it toward its RSNode, or (Degraded Replica Selection)
    /// lets it through to the client-chosen backup.
    fn steer_read<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        queue: &mut EventQueue<Ev>,
    ) {
        let state = core.requests.get_mut(req.0).expect("request just created");
        let client_host = core.clients[state.client as usize].host;
        let tor = core.fabric.topo.tor_of_host(client_host);
        let mut pkt = PacketMeta::Request {
            rid: RsnodeId(0),
            magic: MagicField::REQUEST,
            rgid: self
                .groups
                .group_of_host(client_host)
                .expect("clients always have a traffic group"),
            src_host: client_host.0,
            dst_host: core.server_hosts[state.backup.0 as usize].0,
        };
        let action = self.rules[tor].ingress(&mut pkt, true);
        let client_idx = state.client;
        match action {
            IngressAction::Forward => {
                // Degraded Replica Selection: straight to the backup.
                state.copies += 1;
                let backup = state.backup;
                let token = ServerToken::new(
                    req,
                    backup,
                    state.client,
                    state.rgid,
                    false,
                    now,
                    now,
                    SimDuration::ZERO,
                    now,
                    None,
                );
                let hash = flow_hash(req, 7);
                let Some(latency) = core.fabric.try_host_to_host(
                    client_host,
                    core.server_hosts[backup.0 as usize],
                    hash,
                ) else {
                    core.drop_copy(req.0); // partitioned by link faults
                    return;
                };
                queue.schedule_after(latency, Ev::ServerArrive { token });
                core.fabric
                    .devices
                    .bump(DeviceId::Switch(tor.0), DeviceCounter::Clamp, 1);
                if core.fabric.observing() {
                    let sink = HopSink::Copy(req.0, backup.0);
                    core.fabric
                        .push_residency_hop(sink, DeviceId::Client(client_idx), now, now);
                    core.fabric.observe_host_to_host(
                        now,
                        client_host,
                        core.server_hosts[backup.0 as usize],
                        hash,
                        sink,
                        REQ_BYTES,
                    );
                }
            }
            IngressAction::ToAccelerator => {
                // The RSNode is this very ToR: one host→ToR link.
                let hash = flow_hash(req, 11);
                let Some(latency) = core.fabric.try_host_to_switch(client_host, tor, hash) else {
                    core.drop_copy(req.0); // the client's uplink is dark
                    return;
                };
                queue.schedule_after(latency, Ev::RsnodeArrive { req, op: tor });
                if core.fabric.observing() {
                    let sink = HopSink::Pending(req.0);
                    core.fabric
                        .push_residency_hop(sink, DeviceId::Client(client_idx), now, now);
                    core.fabric
                        .observe_host_to_switch(now, client_host, &[tor], sink, REQ_BYTES);
                }
            }
            IngressAction::ForwardTowardRsnode(rid) => {
                let op = self
                    .controller
                    .switch_of_rsnode(rid)
                    .expect("deployed rules only reference live operators");
                let hash = flow_hash(req, 11);
                let Some(latency) = core.fabric.try_host_to_switch(client_host, op, hash) else {
                    core.drop_copy(req.0); // no live path to the RSNode
                    return;
                };
                queue.schedule_after(latency, Ev::RsnodeArrive { req, op });
                if core.fabric.observing() {
                    let sink = HopSink::Pending(req.0);
                    core.fabric
                        .push_residency_hop(sink, DeviceId::Client(client_idx), now, now);
                    let p = core
                        .fabric
                        .host_to_switch_path(client_host, op, hash)
                        .expect("copy was just timed over a live path");
                    core.fabric
                        .observe_host_to_switch(now, client_host, &p, sink, REQ_BYTES);
                }
            }
            IngressAction::CloneToAcceleratorAndForward => {
                unreachable!("requests are never cloned")
            }
        }
    }

    fn on_rsnode_arrive<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        op: SwitchId,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.dead_operators.contains(&op) {
            // Fail-stopped operator (fault plan): the packet blackholes;
            // the client's timeout machinery recovers the request.
            core.fabric
                .devices
                .bump(DeviceId::Switch(op.0), DeviceCounter::Drop, 1);
            core.drop_copy(req.0);
            return;
        }
        let Some(operator) = self.operators.get_mut(op) else {
            // The operator was retired by a re-plan while the request was
            // in flight; fall back to the client's backup replica (DRS
            // semantics for in-flight stragglers).
            self.forward_to_backup(core, now, req, op, queue);
            return;
        };
        // In-switch hot-key cache: a hit answers the read at the switch
        // itself — zero server hops, the accelerator never sees it. The
        // lookup happens only on live, current operators (dead and
        // retired ones were handled above).
        if let Some(cache) = operator.cache.as_mut() {
            let meta = core
                .requests
                .get(req.0)
                .map(|s| (s.key, s.sent_at, s.client));
            if let Some((key, sent_at, client)) = meta {
                if let Some(entry) = cache.lookup(key) {
                    // Serve from the switch; a version behind the store's
                    // committed one is a stale read (a coherence message
                    // was lost or is still in flight) and is counted.
                    let stale = entry.version < core.versions.get(key);
                    if stale {
                        cache.note_stale();
                    }
                    let sw = DeviceId::Switch(op.0);
                    core.fabric.devices.bump(sw, DeviceCounter::CacheHit, 1);
                    if stale {
                        core.fabric.devices.bump(sw, DeviceCounter::CacheStale, 1);
                    }
                    let state = core.requests.get_mut(req.0).expect("present above");
                    state.copies += 1;
                    let origin = entry.origin;
                    let token = ServerToken::new(
                        req,
                        origin,
                        client,
                        state.rgid,
                        false,
                        sent_at,
                        now,
                        SimDuration::ZERO,
                        now,
                        None,
                    );
                    let hash = flow_hash(req, 23);
                    let client_host = core.clients[client as usize].host;
                    let Some(latency) = core.fabric.try_switch_to_host(op, client_host, hash)
                    else {
                        core.drop_copy(req.0); // reply path to the client severed
                        return;
                    };
                    queue.schedule_after(
                        latency,
                        Ev::ClientReceive {
                            token,
                            status: netrs_kvstore::ServerStatus::default(),
                        },
                    );
                    if core.fabric.observing() {
                        // Steer hops end at this switch; the cached
                        // response heads straight for the client.
                        core.fabric.seal_steer_hops(req.0, origin.0, sw, now);
                        core.fabric.observe_switch_to_host(
                            now,
                            op,
                            client_host,
                            hash,
                            HopSink::Copy(req.0, origin.0),
                            RESP_BYTES,
                        );
                    }
                    return;
                }
                core.fabric
                    .devices
                    .bump(DeviceId::Switch(op.0), DeviceCounter::CacheMiss, 1);
            }
        }
        let (done_at, waited) = operator.accel.schedule_selection_timed(now);
        queue.schedule_at(
            done_at,
            Ev::Select {
                req,
                op,
                arrived: now,
                waited,
            },
        );
    }

    fn forward_to_backup<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        from: SwitchId,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(state) = core.requests.get_mut(req.0) else {
            return;
        };
        state.copies += 1;
        let backup = state.backup;
        // The hop to the retired RSNode was pure network steering.
        let token = ServerToken::new(
            req,
            backup,
            state.client,
            state.rgid,
            false,
            state.sent_at,
            now,
            SimDuration::ZERO,
            now,
            None,
        );
        let hash = flow_hash(req, 13);
        let Some(latency) =
            core.fabric
                .try_switch_to_host(from, core.server_hosts[backup.0 as usize], hash)
        else {
            core.drop_copy(req.0); // no live path to the backup
            return;
        };
        queue.schedule_after(latency, Ev::ServerArrive { token });
        core.fabric
            .devices
            .bump(DeviceId::Switch(from.0), DeviceCounter::Drop, 1);
        if core.fabric.observing() {
            // Any time spent at the retired operator belongs to its
            // switch; then the copy heads for the backup replica.
            core.fabric
                .seal_steer_hops(req.0, backup.0, DeviceId::Switch(from.0), now);
            core.fabric.observe_switch_to_host(
                now,
                from,
                core.server_hosts[backup.0 as usize],
                hash,
                HopSink::Copy(req.0, backup.0),
                REQ_BYTES,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_select<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        op: SwitchId,
        arrived: SimTime,
        waited: SimDuration,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.dead_operators.contains(&op) {
            // The operator died while the selection was in flight.
            core.fabric
                .devices
                .bump(DeviceId::Switch(op.0), DeviceCounter::Drop, 1);
            core.drop_copy(req.0);
            return;
        }
        let Some(operator) = self.operators.get_mut(op) else {
            self.forward_to_backup(core, now, req, op, queue);
            return;
        };
        let Some(state) = core.requests.get_mut(req.0) else {
            return;
        };
        let replicas = core.ring.groups().replicas(state.rgid);
        let target = operator.selector.select(replicas, now);
        operator.selector.on_send(target, now);
        state.primary = Some(target);
        state.copies += 1;
        let token = ServerToken::new(
            req,
            target,
            state.client,
            state.rgid,
            false,
            state.sent_at,
            arrived,
            waited,
            now,
            Some(op),
        );
        let hash = flow_hash(req, 17);
        let Some(latency) =
            core.fabric
                .try_switch_to_host(op, core.server_hosts[target.0 as usize], hash)
        else {
            core.drop_copy(req.0); // no live path to the chosen replica
            return;
        };
        queue.schedule_after(latency, Ev::ServerArrive { token });
        let accel = DeviceId::Accelerator(op.0);
        core.fabric.devices.selection(accel, waited);
        core.fabric
            .devices
            .busy(accel, core.cfg.accelerator.service_time);
        if core.fabric.observing() {
            // The copy occupied the RSNode from arrival through selection.
            core.fabric.seal_steer_hops(req.0, target.0, accel, now);
            core.fabric.observe_switch_to_host(
                now,
                op,
                core.server_hosts[target.0 as usize],
                hash,
                HopSink::Copy(req.0, target.0),
                REQ_BYTES,
            );
        }
    }

    fn on_selector_update(&mut self, now: SimTime, op: SwitchId, fb: Feedback) {
        if let Some(operator) = self.operators.get_mut(op) {
            operator.selector.on_response(&fb, now);
        }
    }

    /// The response must traverse its RSNode (§I "Multiple Paths"):
    /// server → RSNode switch → client, with a clone peeled off to the
    /// accelerator at the RSNode. Copies without an RSNode (DRS,
    /// retired-operator fallbacks, writes) go straight back.
    fn route_reply<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        token: ServerToken,
        status: netrs_kvstore::ServerStatus,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(op) = token.rsnode else {
            core.send_reply_direct(now, token, status, queue);
            return;
        };
        let Some(state) = core.requests.get(token.req.0) else {
            return;
        };
        let key = state.key;
        let client_host = core.clients[state.client as usize].host;
        let server_host = core.server_hosts[token.server.0 as usize];
        let hash = flow_hash(token.req, 23);
        let sink = HopSink::Copy(token.req.0, token.server.0);
        let Some(to_rsnode) = core.fabric.try_host_to_switch(server_host, op, hash) else {
            core.drop_copy(token.req.0); // reply path to the RSNode severed
            return;
        };
        let at_rsnode = now + to_rsnode;
        if let Some(operator) = self.operators.get_mut(op) {
            if let Some(cache) = operator.cache.as_mut() {
                // The switch caches what it forwards: populate from the
                // observed response, stamped with the store's committed
                // version so later hits can be checked for staleness.
                let before = cache.stats().evictions;
                cache.admit(key, core.versions.get(key), token.server);
                let evicted = cache.stats().evictions - before;
                if evicted > 0 {
                    core.fabric.devices.bump(
                        DeviceId::Switch(op.0),
                        DeviceCounter::CacheEvict,
                        evicted,
                    );
                }
            }
            let update_at = operator.accel.schedule_clone(at_rsnode);
            let fb = Feedback {
                server: token.server,
                queue_len: status.queue_len,
                service_time: status.service_time(),
                latency: at_rsnode - token.rsnode_sent_at,
            };
            queue.schedule_at(update_at, Ev::SelectorUpdate { op, fb });
            let accel = DeviceId::Accelerator(op.0);
            core.fabric
                .devices
                .bump(accel, DeviceCounter::CloneUpdate, 1);
            core.fabric
                .devices
                .busy(accel, core.cfg.accelerator.service_time);
        }
        let Some(to_client) = core.fabric.try_switch_to_host(op, client_host, hash) else {
            core.drop_copy(token.req.0); // reply path to the client severed
            return;
        };
        let at_client = at_rsnode + to_client;
        queue.schedule_at(at_client, Ev::ClientReceive { token, status });
        if core.fabric.observing() {
            let p = core
                .fabric
                .host_to_switch_path(server_host, op, hash)
                .expect("reply was just timed over a live path");
            core.fabric
                .observe_host_to_switch(now, server_host, &p, sink, RESP_BYTES);
            core.fabric
                .observe_switch_to_host(at_rsnode, op, client_host, hash, sink, RESP_BYTES);
        }
    }

    /// Monitor accounting: the response leaves the network at the
    /// client's ToR (§IV-D).
    fn on_reply<D: DeviceProbe>(&mut self, core: &Core<D>, info: &ReplyInfo) {
        if !info.first_completion || self.monitors.is_empty() {
            return;
        }
        let client_host = core.clients[info.client as usize].host;
        let server_rack = core
            .fabric
            .topo
            .rack_of_host(core.server_hosts[info.token.server.0 as usize]);
        let marker = self.controller.marker_of_rack(server_rack);
        let tor = core.fabric.topo.tor_of_host(client_host);
        if let Some(m) = self.monitors.get_mut(tor) {
            m.record(info.rgid, marker);
        }
    }

    /// §III-C(ii): an operator whose accelerator ran hotter than the
    /// policy's limit over the last window has its traffic groups
    /// degraded to DRS (they recover at the next re-plan, if any).
    fn on_overload_check<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(policy) = core.cfg.overload else {
            return;
        };
        if !core.drained() {
            queue.schedule_after(policy.interval, Ev::OverloadCheck);
        }
        let window_core_ns =
            u128::from(policy.interval.as_nanos()) * u128::from(core.cfg.accelerator.cores);
        let mut overloaded = Vec::new();
        let last_busy = &mut self.last_accel_busy;
        for (sw, op) in self.operators.iter() {
            let busy = op.accel.stats().busy_core_ns;
            let last = std::mem::replace(&mut last_busy[sw.0 as usize], busy);
            // A re-plan may have recreated this operator with a fresh
            // accelerator, putting its counter behind the recorded one.
            let util = busy.saturating_sub(last) as f64 / window_core_ns as f64;
            if util > policy.utilization_limit {
                overloaded.push(sw);
            }
        }
        if overloaded.is_empty() {
            return;
        }
        for sw in overloaded {
            let affected = self.controller.on_operator_overload(sw);
            if !affected.is_empty() {
                core.overload_events += 1;
            }
            if core.control_log().is_some() {
                let diff = PlanDiff {
                    rsnodes_removed: if affected.is_empty() {
                        Vec::new()
                    } else {
                        vec![sw]
                    },
                    unassigned: affected,
                    ..PlanDiff::default()
                };
                let rec = plan_record(
                    now.as_nanos(),
                    "overload",
                    Some(sw.0),
                    None,
                    diff,
                    self.controller.current_plan(),
                    self.rules.capacity(),
                );
                if let Some(log) = core.control_log() {
                    log.plan_event(rec);
                }
            }
        }
        self.rules
            .reset_from_map(self.controller.deploy(&self.groups));
    }

    fn fail_operator(&mut self, sw: SwitchId) -> Vec<u32> {
        let affected = self.controller.on_operator_failure(sw);
        self.rules
            .reset_from_map(self.controller.deploy(&self.groups));
        affected
    }

    /// Fault-plan `OperatorFail`: the accelerator dies silently. Its
    /// operator state retires (the work it performed stays in the
    /// statistics), its hot-key cache is flushed — switch memory is
    /// lost with the switch — and the switch blackholes steered packets
    /// until the controller's detection fires.
    fn operator_crashed(&mut self, sw: SwitchId) {
        if let Some(mut op) = self.operators.remove(sw) {
            if let Some(cache) = op.cache.as_mut() {
                cache.flush();
            }
            self.retired_operators.push(op);
        }
        self.dead_operators.insert(sw);
    }

    /// Fault-plan `OperatorRecover`: the controller restores the
    /// operator's baseline traffic groups (unless a re-plan reassigned
    /// them meanwhile) and installs a fresh selector — the §II cold-start
    /// transient applies. Returns the restored groups.
    fn recover_operator<D: DeviceProbe>(
        &mut self,
        core: &Core<D>,
        now: SimTime,
        sw: SwitchId,
    ) -> Vec<u32> {
        if !self.dead_operators.remove(&sw) {
            return Vec::new(); // never crashed (or already recovered)
        }
        let restored = self.controller.on_operator_recovery(sw);
        self.rules
            .reset_from_map(self.controller.deploy(&self.groups));
        let rsnodes = self.controller.current_plan().rsnodes();
        if !rsnodes.contains(&sw) {
            return restored; // a re-plan moved its groups elsewhere for good
        }
        let cfg = &core.cfg;
        let n = rsnodes.len().max(1) as f64;
        self.operators.get_or_insert_with(sw, || {
            let op = RsOperator::new(
                cfg.selector.build_with_concurrency(
                    cfg.c3,
                    n,
                    SimRng::from_seed(
                        cfg.seed ^ 0x0DD0_FA17 ^ (u64::from(sw.0) << 32) ^ now.as_nanos(),
                    ),
                ),
                cfg.accelerator,
            );
            // The recovered switch comes back with empty cache memory.
            match cfg.hot_cache {
                Some(c) => op.with_cache(c),
                None => op,
            }
        });
        restored
    }

    /// A write fanned out to its replica group: emit one coherence
    /// message per live operator (ascending switch order), each riding
    /// the real — possibly lossy — network from the writing client.
    fn on_write_issued<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        req: ReqId,
        key: u64,
        queue: &mut EventQueue<Ev>,
    ) {
        if core.cfg.hot_cache.is_none() {
            return;
        }
        let Some(state) = core.requests.get(req.0) else {
            return;
        };
        let client_host = core.clients[state.client as usize].host;
        let version = core.versions.get(key);
        for op in self.operators.keys() {
            let hash = flow_hash(req, 37);
            let Some(latency) = core.fabric.try_host_to_switch(client_host, op, hash) else {
                // No live path: the message is lost and any cached entry
                // at `op` goes stale until evicted or re-admitted.
                core.fabric
                    .devices
                    .bump(DeviceId::Switch(op.0), DeviceCounter::Drop, 1);
                continue;
            };
            queue.schedule_after(latency, Ev::CacheInvalidate { op, key, version });
        }
    }

    /// A coherence message arrives at an operator's cache
    /// ([`Ev::CacheInvalidate`] mechanics).
    fn on_cache_invalidate<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        op: SwitchId,
        key: u64,
        version: u64,
    ) {
        // Dead or retired operators were removed from the live table;
        // the message finds nothing to act on.
        let Some(operator) = self.operators.get_mut(op) else {
            return;
        };
        let Some(cache) = operator.cache.as_mut() else {
            return;
        };
        if cache.apply_write(key, version) {
            core.fabric
                .devices
                .bump(DeviceId::Switch(op.0), DeviceCounter::CacheInvalidate, 1);
        }
    }

    /// Emits one end-of-run `cache` control record per live operator
    /// (ascending switch order) plus one aggregate for retired
    /// operators, when a cache and a control sink are both configured.
    fn audit_caches<D: DeviceProbe>(&mut self, core: &mut Core<D>, now: SimTime) {
        if core.cfg.hot_cache.is_none() || core.control_log().is_none() {
            return;
        }
        let t_ns = now.as_nanos();
        let mut recs: Vec<CacheRecord> = self
            .operators
            .iter()
            .filter_map(|(sw, opr)| {
                let c = opr.cache.as_ref()?;
                let s = c.stats();
                Some(CacheRecord {
                    t_ns,
                    switch: Some(sw.0),
                    len: c.len() as u64,
                    hits: s.hits,
                    misses: s.misses,
                    stale_hits: s.stale_hits,
                    evictions: s.evictions,
                    invalidations: s.invalidations,
                })
            })
            .collect();
        let mut retired = CacheStats::default();
        let mut any_retired = false;
        for opr in &self.retired_operators {
            if let Some(c) = &opr.cache {
                any_retired = true;
                retired.absorb(&c.stats());
            }
        }
        if any_retired {
            recs.push(CacheRecord {
                t_ns,
                switch: None,
                len: 0,
                hits: retired.hits,
                misses: retired.misses,
                stale_hits: retired.stale_hits,
                evictions: retired.evictions,
                invalidations: retired.invalidations,
            });
        }
        if let Some(log) = core.control_log() {
            for rec in recs {
                log.cache(rec);
            }
        }
    }

    fn operator_tiers(&self, topo: &FatTree) -> [usize; 3] {
        let mut census = [0usize; 3];
        for sw in self.operators.keys() {
            census[topo.tier(sw).id() as usize] += 1;
        }
        census
    }

    fn accel_busy(&self) -> (u128, usize) {
        let busy = self
            .operators
            .values()
            .chain(self.retired_operators.iter())
            .map(|op| op.accel.stats().busy_core_ns)
            .sum();
        (busy, self.operators.len() + self.retired_operators.len())
    }

    fn control_stats(&self, now: SimTime, topo: &FatTree) -> ControlStats {
        let rsnode_census = self.controller.current_plan().tier_census(topo);
        // The table iterates in ascending switch order, so the float
        // summation order below never depends on run-to-run state.
        let live_accels = self.operators.values().map(|op| &op.accel);
        let retired_accels = self.retired_operators.iter().map(|op| &op.accel);
        let accels: Vec<&Accelerator> = live_accels.chain(retired_accels).collect();
        let mean_accel_utilization = if accels.is_empty() {
            0.0
        } else {
            accels.iter().map(|a| a.utilization(now)).sum::<f64>() / accels.len() as f64
        };
        let max_accel_utilization = accels
            .iter()
            .map(|a| a.utilization(now))
            .fold(0.0_f64, f64::max);
        let mean_selection_wait = if accels.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(
                (accels
                    .iter()
                    .map(|a| a.mean_selection_wait().as_nanos() as u128)
                    .sum::<u128>()
                    / accels.len() as u128) as u64,
            )
        };
        // Cache counters fold over every operator that ever held a
        // cache, live (ascending switch order) then retired.
        let mut cache_totals = CacheStats::default();
        let mut any_cache = false;
        for opr in self.operators.values().chain(self.retired_operators.iter()) {
            if let Some(c) = &opr.cache {
                any_cache = true;
                cache_totals.absorb(&c.stats());
            }
        }
        ControlStats {
            rsnode_census,
            drs_groups: self.controller.current_plan().drs.len(),
            mean_accel_utilization,
            max_accel_utilization,
            mean_selection_wait,
            cache: any_cache.then_some(cache_totals),
        }
    }
}

/// Implements the [`SchemePolicy`] hooks both in-network schemes share by
/// delegating to the wrapped [`InNetwork`] state. The caller supplies the
/// type name and the field path to that state.
macro_rules! delegate_in_network {
    ($field:ident) => {
        fn steer_read(
            &mut self,
            core: &mut Core<D>,
            now: SimTime,
            req: ReqId,
            _replicas: &[ServerId],
            queue: &mut EventQueue<Ev>,
        ) {
            self.$field.steer_read(core, now, req, queue);
        }

        fn on_rsnode_arrive(
            &mut self,
            core: &mut Core<D>,
            now: SimTime,
            req: ReqId,
            op: SwitchId,
            queue: &mut EventQueue<Ev>,
        ) {
            self.$field.on_rsnode_arrive(core, now, req, op, queue);
        }

        fn on_select(
            &mut self,
            core: &mut Core<D>,
            now: SimTime,
            req: ReqId,
            op: SwitchId,
            arrived: SimTime,
            waited: SimDuration,
            queue: &mut EventQueue<Ev>,
        ) {
            self.$field
                .on_select(core, now, req, op, arrived, waited, queue);
        }

        fn on_selector_update(&mut self, now: SimTime, op: SwitchId, fb: Feedback) {
            self.$field.on_selector_update(now, op, fb);
        }

        fn on_write_issued(
            &mut self,
            core: &mut Core<D>,
            _now: SimTime,
            req: ReqId,
            key: u64,
            queue: &mut EventQueue<Ev>,
        ) {
            self.$field.on_write_issued(core, req, key, queue);
        }

        fn on_cache_invalidate(
            &mut self,
            core: &mut Core<D>,
            _now: SimTime,
            op: SwitchId,
            key: u64,
            version: u64,
        ) {
            self.$field.on_cache_invalidate(core, op, key, version);
        }

        fn audit_caches(&mut self, core: &mut Core<D>, now: SimTime) {
            self.$field.audit_caches(core, now);
        }

        fn on_overload_check(
            &mut self,
            core: &mut Core<D>,
            now: SimTime,
            queue: &mut EventQueue<Ev>,
        ) {
            self.$field.on_overload_check(core, now, queue);
        }

        fn route_reply(
            &mut self,
            core: &mut Core<D>,
            now: SimTime,
            token: ServerToken,
            status: netrs_kvstore::ServerStatus,
            queue: &mut EventQueue<Ev>,
        ) {
            self.$field.route_reply(core, now, token, status, queue);
        }

        fn on_reply(&mut self, core: &mut Core<D>, _now: SimTime, info: &ReplyInfo) {
            self.$field.on_reply(core, info);
        }

        fn current_plan(&self) -> Option<&Rsp> {
            Some(self.$field.controller.current_plan())
        }

        fn fail_operator(&mut self, sw: SwitchId) -> Result<Vec<u32>, crate::policy::NotInNetwork> {
            Ok(self.$field.fail_operator(sw))
        }

        fn operator_crashed(&mut self, sw: SwitchId) -> bool {
            self.$field.operator_crashed(sw);
            true
        }

        fn recover_operator(&mut self, core: &mut Core<D>, now: SimTime, sw: SwitchId) -> Vec<u32> {
            self.$field.recover_operator(core, now, sw)
        }

        fn operator_tiers(&self, topo: &FatTree) -> [usize; 3] {
            self.$field.operator_tiers(topo)
        }

        fn accel_busy(&self) -> (u128, usize) {
            self.$field.accel_busy()
        }

        fn drs_groups(&self) -> usize {
            self.$field.controller.current_plan().drs.len()
        }

        fn control_stats(&self, now: SimTime, topo: &FatTree) -> ControlStats {
            self.$field.control_stats(now, topo)
        }
    };
}

/// NetRS-ToR: one RSNode on every client ToR, no re-planning.
pub(crate) struct NetRsToRPolicy {
    net: InNetwork,
}

impl NetRsToRPolicy {
    pub(crate) fn new<D: DeviceProbe>(core: &Core<D>, root: &SimRng) -> Self {
        NetRsToRPolicy {
            net: InNetwork::new(core, root, false),
        }
    }
}

impl<D: DeviceProbe> SchemePolicy<D> for NetRsToRPolicy {
    fn prime(&mut self, core: &mut Core<D>, queue: &mut EventQueue<Ev>) {
        self.net.prime_overload(core, queue);
        self.net.audit_bootstrap(core);
    }

    delegate_in_network!(net);
}

/// NetRS-ILP: optimized RSNode placement — from the oracle traffic matrix
/// up front, or re-planned periodically from ToR monitor measurements.
pub(crate) struct NetRsIlpPolicy {
    net: InNetwork,
}

impl NetRsIlpPolicy {
    pub(crate) fn new<D: DeviceProbe>(core: &Core<D>, root: &SimRng) -> Self {
        let oracle = matches!(core.cfg.plan_source, PlanSource::Oracle);
        NetRsIlpPolicy {
            net: InNetwork::new(core, root, oracle),
        }
    }
}

impl<D: DeviceProbe> SchemePolicy<D> for NetRsIlpPolicy {
    fn prime(&mut self, core: &mut Core<D>, queue: &mut EventQueue<Ev>) {
        if let PlanSource::Monitored { interval } = core.cfg.plan_source {
            queue.schedule_after(interval, Ev::Replan);
        }
        self.net.prime_overload(core, queue);
        self.net.audit_bootstrap(core);
    }

    fn on_replan(&mut self, core: &mut Core<D>, now: SimTime, queue: &mut EventQueue<Ev>) {
        if core.issued >= core.cfg.requests {
            return; // wind down with the workload
        }
        let net = &mut self.net;
        if let PlanSource::Monitored { interval } = core.cfg.plan_source {
            queue.schedule_after(interval, Ev::Replan);
            // The monitor table iterates in ascending switch order, so
            // the traffic matrix accumulates rates in a run-independent
            // float order.
            let snapshots: Vec<_> = net
                .monitors
                .iter_mut()
                .map(|(_, m)| m.snapshot(now))
                .collect();
            let traffic = TrafficMatrix::from_snapshots(net.groups.len(), &snapshots);
            // Windows stream out even when the re-plan below is skipped:
            // the control stream sees every snapshot the monitors took.
            if let Some(log) = core.control_log() {
                for snap in &snapshots {
                    log.snapshot(snap);
                }
            }
            if traffic.total() <= 0.0 {
                return; // no signal yet
            }
            let (diff, stats) =
                net.controller
                    .plan_with_stats(&net.groups, &traffic, core.cfg.plan_solver);
            net.rules.reset_from_map(net.controller.deploy(&net.groups));
            net.rebuild_operators(
                &core.cfg,
                SimRng::from_seed(core.cfg.seed ^ 0xFEED_F00D ^ now.as_nanos()),
            );
            core.replans += 1;
            if core.control_log().is_some() {
                let rec = plan_record(
                    now.as_nanos(),
                    "replan",
                    None,
                    Some(stats),
                    diff,
                    net.controller.current_plan(),
                    net.rules.capacity(),
                );
                if let Some(log) = core.control_log() {
                    log.plan_event(rec);
                }
            }
        }
    }

    delegate_in_network!(net);
}
