//! Test-support hooks for the allocation-freedom test.
//!
//! The crate forbids unsafe code, so the counting `#[global_allocator]`
//! that proves the timing fast path never allocates has to live in an
//! integration-test crate (`tests/no_alloc.rs`). Fabric timing is
//! crate-private; [`TimingProbe`] re-exposes exactly the healthy-fabric
//! trio that runs once per simulated packet, and nothing else.

use netrs_simcore::{NoDeviceProbe, SimDuration};
use netrs_topology::{FatTree, HostId, SwitchId};

use crate::fabric::Fabric;

/// A healthy fabric plus just enough surface to drive its per-packet
/// timing helpers from outside the crate.
pub struct TimingProbe {
    fabric: Fabric<NoDeviceProbe>,
}

impl TimingProbe {
    /// A probe over a fault-free `arity`-ary fat-tree with the paper's
    /// 30 µs link latency.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is not a valid fat-tree arity.
    #[must_use]
    pub fn new(arity: u32) -> Self {
        let topo = FatTree::new(arity).expect("valid fat-tree arity");
        TimingProbe {
            fabric: Fabric::new(topo, SimDuration::from_micros(30), NoDeviceProbe),
        }
    }

    /// Number of hosts in the probe's topology.
    #[must_use]
    pub fn num_hosts(&self) -> u32 {
        self.fabric.topo.num_hosts()
    }

    /// Number of switches in the probe's topology.
    #[must_use]
    pub fn num_switches(&self) -> u32 {
        self.fabric.topo.num_switches()
    }

    /// Runs the three per-packet timing helpers (host→host, host→switch,
    /// switch→host) exactly as the event loop does and returns the summed
    /// delay, or `None` if any segment is severed (never, here: the probe
    /// carries no faults).
    #[must_use]
    pub fn trio(&self, a: u32, b: u32, sw: u32, hash: u64) -> Option<SimDuration> {
        let (a, b, sw) = (HostId(a), HostId(b), SwitchId(sw));
        Some(
            self.fabric.try_host_to_host(a, b, hash)?
                + self.fabric.try_host_to_switch(a, sw, hash)?
                + self.fabric.try_switch_to_host(sw, b, hash)?,
        )
    }
}
