//! Host-performance profiles: the versioned artifact emitted by
//! `simulate --perf` and accumulated by the bench harness.
//!
//! A [`HostProfile`] describes one run of the simulator *as a program on
//! the host machine*: per-event-kind dispatch counts and estimated
//! wall-clock self-time (from [`netrs_simcore::PerfProbe`]'s strided
//! sampling), event-queue churn, peak RSS, optional allocation counters,
//! and host metadata (commit, CPU model, core count) so numbers from
//! different machines are never compared blind. [`PerfArtifact`] is the
//! on-disk history: `schema_version` plus an append-only list of runs.
//!
//! Serialization is hand-written to pin the JSON schema: field order is
//! fixed and the optional `alloc` block is omitted (never null) when
//! allocation tracking was unavailable. The legacy pre-versioned
//! BENCH_PERF.json shape (a flat label → throughput-entry map) upgrades
//! losslessly into v1 runs via [`PerfArtifact::from_value`].

use netrs_simcore::{PerfReport, DEPTH_BUCKETS};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::cluster::Ev;

/// Version tag carried by every [`HostProfile`] and [`PerfArtifact`].
pub const PERF_SCHEMA_VERSION: u64 = 1;

/// `(kind name, layer)` for every [`Ev`] variant, indexed by
/// [`Ev::kind_index`]. The layer tags map attribution onto the layered
/// architecture (DESIGN.md §7): `state` (workload generation, request
/// bookkeeping, client machinery), `policy` (scheme decision points and
/// control plane), `server` (queueing + service), `fabric` (packet
/// transit — no entries today because hop timing is closed-form inside
/// the steer/route handlers, so fabric cost surfaces inside the policy
/// and server kinds that invoke it).
pub const EV_KINDS: [(&str, &str); 17] = [
    ("Generate", "state"),
    ("GatedSend", "policy"),
    ("RsnodeArrive", "policy"),
    ("Select", "policy"),
    ("ServerArrive", "server"),
    ("ServerDone", "server"),
    ("SelectorUpdate", "policy"),
    ("ClientReceive", "state"),
    ("R95Check", "policy"),
    ("Fluctuate", "server"),
    ("OverloadCheck", "policy"),
    ("Replan", "policy"),
    ("Sample", "state"),
    ("Fault", "state"),
    ("RetryCheck", "state"),
    ("OperatorDetect", "policy"),
    ("CacheInvalidate", "policy"),
];

/// The kind names alone, in [`Ev::kind_index`] order — the table handed
/// to [`netrs_simcore::PerfProbe::new`].
#[must_use]
pub fn kind_names() -> &'static [&'static str] {
    static NAMES: [&str; 17] = [
        EV_KINDS[0].0,
        EV_KINDS[1].0,
        EV_KINDS[2].0,
        EV_KINDS[3].0,
        EV_KINDS[4].0,
        EV_KINDS[5].0,
        EV_KINDS[6].0,
        EV_KINDS[7].0,
        EV_KINDS[8].0,
        EV_KINDS[9].0,
        EV_KINDS[10].0,
        EV_KINDS[11].0,
        EV_KINDS[12].0,
        EV_KINDS[13].0,
        EV_KINDS[14].0,
        EV_KINDS[15].0,
        EV_KINDS[16].0,
    ];
    &NAMES
}

impl Ev {
    /// Dense kind index into [`EV_KINDS`] (the discriminant order).
    #[must_use]
    pub fn kind_index(&self) -> u32 {
        match self {
            Ev::Generate { .. } => 0,
            Ev::GatedSend { .. } => 1,
            Ev::RsnodeArrive { .. } => 2,
            Ev::Select { .. } => 3,
            Ev::ServerArrive { .. } => 4,
            Ev::ServerDone { .. } => 5,
            Ev::SelectorUpdate { .. } => 6,
            Ev::ClientReceive { .. } => 7,
            Ev::R95Check { .. } => 8,
            Ev::Fluctuate { .. } => 9,
            Ev::OverloadCheck => 10,
            Ev::Replan => 11,
            Ev::Sample => 12,
            Ev::Fault { .. } => 13,
            Ev::RetryCheck { .. } => 14,
            Ev::OperatorDetect { .. } => 15,
            Ev::CacheInvalidate { .. } => 16,
        }
    }
}

/// Where a profile was measured: enough host metadata to make
/// cross-machine comparisons visible instead of silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMeta {
    /// Short git commit of the build tree (`unknown` outside a repo).
    pub commit: String,
    /// CPU model string from `/proc/cpuinfo` (`unknown` elsewhere).
    pub cpu: String,
    /// Logical cores available to the process.
    pub cores: u32,
}

impl HostMeta {
    /// Placeholder metadata for upgraded legacy records and tests.
    #[must_use]
    pub fn unknown() -> Self {
        HostMeta {
            commit: "unknown".into(),
            cpu: "unknown".into(),
            cores: 0,
        }
    }

    /// Probes the current host. Every field degrades to its `unknown`
    /// value rather than failing.
    #[must_use]
    pub fn detect() -> Self {
        let commit = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into());
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|info| {
                info.lines().find_map(|line| {
                    let rest = line.strip_prefix("model name")?;
                    Some(rest.split_once(':')?.1.trim().to_string())
                })
            })
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into());
        let cores = std::thread::available_parallelism().map_or(0, |n| n.get() as u32);
        HostMeta { commit, cpu, cores }
    }
}

impl Serialize for HostMeta {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("commit".into(), Value::Str(self.commit.clone())),
            ("cpu".into(), Value::Str(self.cpu.clone())),
            ("cores".into(), Value::U(u128::from(self.cores))),
        ])
    }
}

impl Deserialize for HostMeta {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for HostMeta"))?;
        Ok(HostMeta {
            commit: serde::field(entries, "commit", "HostMeta").and_then(String::deser)?,
            cpu: serde::field(entries, "cpu", "HostMeta").and_then(String::deser)?,
            cores: serde::field(entries, "cores", "HostMeta").and_then(u32::deser)?,
        })
    }
}

/// Event-queue churn over one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub pushes: u64,
    /// Events ever popped.
    pub pops: u64,
    /// Deepest the pending-event list ever got.
    pub high_water: u64,
    /// Log2 histogram of post-event queue depths: entry `i` counts
    /// events whose pending depth was in `[2^i, 2^(i+1))` (entry 0 also
    /// holds depth 0). Trailing zero buckets are trimmed.
    pub depth_hist: Vec<u64>,
}

impl Serialize for QueueStats {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("pushes".into(), Value::U(u128::from(self.pushes))),
            ("pops".into(), Value::U(u128::from(self.pops))),
            ("high_water".into(), Value::U(u128::from(self.high_water))),
            (
                "depth_hist".into(),
                Value::Arr(
                    self.depth_hist
                        .iter()
                        .map(|&n| Value::U(u128::from(n)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for QueueStats {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for QueueStats"))?;
        let f = |name: &str| serde::field(entries, name, "QueueStats");
        Ok(QueueStats {
            pushes: f("pushes").and_then(u64::deser)?,
            pops: f("pops").and_then(u64::deser)?,
            high_water: f("high_water").and_then(u64::deser)?,
            depth_hist: f("depth_hist").and_then(Vec::<u64>::deser)?,
        })
    }
}

/// Allocation counters for one run, present only when the binary
/// registered [`netrs_allocprobe`]'s counting allocator (the
/// `alloc-profile` feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations during the run.
    pub allocs: u64,
    /// Heap deallocations during the run.
    pub deallocs: u64,
    /// Peak live heap bytes over the whole process so far.
    pub peak_bytes: u64,
}

impl Serialize for AllocStats {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("allocs".into(), Value::U(u128::from(self.allocs))),
            ("deallocs".into(), Value::U(u128::from(self.deallocs))),
            ("peak_bytes".into(), Value::U(u128::from(self.peak_bytes))),
        ])
    }
}

impl Deserialize for AllocStats {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for AllocStats"))?;
        let f = |name: &str| serde::field(entries, name, "AllocStats");
        Ok(AllocStats {
            allocs: f("allocs").and_then(u64::deser)?,
            deallocs: f("deallocs").and_then(u64::deser)?,
            peak_bytes: f("peak_bytes").and_then(u64::deser)?,
        })
    }
}

/// Window-driver shape of one parallel sharded run — the
/// `sharded-parallel` suite's extra columns. Unlike [`QueueStats`] these
/// mix schedule facts (shards, windows, events/window) with wall-clock
/// facts (threads, busy imbalance), which is why they live in the perf
/// artifact and never in `RunStats`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelPerf {
    /// Event shards the run was partitioned into (after pod clamping).
    pub shards: u32,
    /// Worker threads that drained the shards (clamped to the shard
    /// count).
    pub threads: u32,
    /// Conservative lookahead windows the driver executed.
    pub windows: u64,
    /// Mean events drained per window across all shards.
    pub events_per_window: f64,
    /// Max/mean per-shard busy wall-time — 1.0 is a perfectly balanced
    /// drain, higher means idle workers at the barrier.
    pub busy_imbalance: f64,
}

impl Serialize for ParallelPerf {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("shards".into(), Value::U(u128::from(self.shards))),
            ("threads".into(), Value::U(u128::from(self.threads))),
            ("windows".into(), Value::U(u128::from(self.windows))),
            ("events_per_window".into(), Value::F(self.events_per_window)),
            ("busy_imbalance".into(), Value::F(self.busy_imbalance)),
        ])
    }
}

impl Deserialize for ParallelPerf {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for ParallelPerf"))?;
        let f = |name: &str| serde::field(entries, name, "ParallelPerf");
        Ok(ParallelPerf {
            shards: f("shards").and_then(u32::deser)?,
            threads: f("threads").and_then(u32::deser)?,
            windows: f("windows").and_then(u64::deser)?,
            events_per_window: f("events_per_window").and_then(f64::deser)?,
            busy_imbalance: f("busy_imbalance").and_then(f64::deser)?,
        })
    }
}

/// One row of the per-event-kind attribution table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindRecord {
    /// Event-kind name (an [`Ev`] variant).
    pub kind: String,
    /// Architectural layer (`state` / `policy` / `server` / `fabric`).
    pub layer: String,
    /// Events of this kind processed.
    pub count: u64,
    /// Events of this kind whose step was wall-clock timed.
    pub sampled: u64,
    /// Estimated total self-time (ns): mean sampled step time scaled to
    /// the full count.
    pub self_ns: u64,
}

impl Serialize for KindRecord {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("kind".into(), Value::Str(self.kind.clone())),
            ("layer".into(), Value::Str(self.layer.clone())),
            ("count".into(), Value::U(u128::from(self.count))),
            ("sampled".into(), Value::U(u128::from(self.sampled))),
            ("self_ns".into(), Value::U(u128::from(self.self_ns))),
        ])
    }
}

impl Deserialize for KindRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for KindRecord"))?;
        let f = |name: &str| serde::field(entries, name, "KindRecord");
        Ok(KindRecord {
            kind: f("kind").and_then(String::deser)?,
            layer: f("layer").and_then(String::deser)?,
            count: f("count").and_then(u64::deser)?,
            sampled: f("sampled").and_then(u64::deser)?,
            self_ns: f("self_ns").and_then(u64::deser)?,
        })
    }
}

/// One run's host-performance profile: what `simulate --perf` writes and
/// what a [`PerfArtifact`] accumulates.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Display label (defaults to the scheme label; the bench harness
    /// prefixes its tag).
    pub label: String,
    /// Schema version ([`PERF_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scheme label the run simulated.
    pub scheme: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Logical requests the workload issued.
    pub requests: u64,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Peak resident-set size (kB; 0 when unavailable).
    pub peak_rss_kb: u64,
    /// Wall-clock sampling stride the profiler used (0 in runs upgraded
    /// from the legacy schema, which had no profiler).
    pub stride: u64,
    /// Sum of per-kind estimated self-times (ns) — the portion of
    /// `wall_s` the kind table accounts for.
    pub attributed_ns: u64,
    /// Where the run was measured.
    pub host: HostMeta,
    /// Event-queue churn.
    pub queue: QueueStats,
    /// Allocation counters; absent when the counting allocator was not
    /// registered.
    pub alloc: Option<AllocStats>,
    /// Window-driver shape; present only on `sharded-parallel` suite
    /// rows.
    pub parallel: Option<ParallelPerf>,
    /// Per-event-kind attribution, [`EV_KINDS`] order, zero-count kinds
    /// included (empty in upgraded legacy runs).
    pub kinds: Vec<KindRecord>,
}

impl HostProfile {
    /// Builds the kind table and queue stats from a probe report.
    #[must_use]
    pub fn kinds_from_report(report: &PerfReport) -> Vec<KindRecord> {
        report
            .kinds
            .iter()
            .zip(EV_KINDS.iter())
            .map(|(k, &(name, layer))| {
                debug_assert_eq!(k.name, name);
                KindRecord {
                    kind: name.into(),
                    layer: layer.into(),
                    count: k.count,
                    sampled: k.sampled,
                    self_ns: k.est_total_ns(),
                }
            })
            .collect()
    }

    /// Trims trailing zero buckets off a fixed-size depth histogram.
    #[must_use]
    pub fn trim_depth_hist(hist: &[u64; DEPTH_BUCKETS]) -> Vec<u64> {
        let used = hist.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        hist[..used].to_vec()
    }

    /// Sum of the kind-table counts (equals `events` for profiled runs;
    /// the analyzer validates this).
    #[must_use]
    pub fn kind_count_sum(&self) -> u64 {
        self.kinds.iter().map(|k| k.count).sum()
    }

    /// An upgraded legacy BENCH_PERF.json entry: throughput numbers
    /// carried over, everything the old schema never recorded zeroed or
    /// `unknown` (and `kinds` empty).
    #[must_use]
    pub fn from_legacy(label: &str, events: u64, events_per_sec: f64, rss: u64, wall: f64) -> Self {
        HostProfile {
            label: label.into(),
            schema_version: PERF_SCHEMA_VERSION,
            // Legacy labels were "tag/scheme"; keep the scheme part.
            scheme: label.rsplit('/').next().unwrap_or(label).into(),
            seed: 0,
            requests: 0,
            events,
            wall_s: wall,
            events_per_sec,
            peak_rss_kb: rss,
            stride: 0,
            attributed_ns: 0,
            host: HostMeta::unknown(),
            queue: QueueStats::default(),
            alloc: None,
            parallel: None,
            kinds: Vec::new(),
        }
    }
}

impl Serialize for HostProfile {
    fn ser(&self) -> Value {
        let mut o: Vec<(String, Value)> = vec![
            ("label".into(), Value::Str(self.label.clone())),
            (
                "schema_version".into(),
                Value::U(u128::from(self.schema_version)),
            ),
            ("scheme".into(), Value::Str(self.scheme.clone())),
            ("seed".into(), Value::U(u128::from(self.seed))),
            ("requests".into(), Value::U(u128::from(self.requests))),
            ("events".into(), Value::U(u128::from(self.events))),
            ("wall_s".into(), Value::F(self.wall_s)),
            ("events_per_sec".into(), Value::F(self.events_per_sec)),
            ("peak_rss_kb".into(), Value::U(u128::from(self.peak_rss_kb))),
            ("stride".into(), Value::U(u128::from(self.stride))),
            (
                "attributed_ns".into(),
                Value::U(u128::from(self.attributed_ns)),
            ),
            ("host".into(), self.host.ser()),
            ("queue".into(), self.queue.ser()),
        ];
        if let Some(alloc) = &self.alloc {
            o.push(("alloc".into(), alloc.ser()));
        }
        if let Some(parallel) = &self.parallel {
            o.push(("parallel".into(), parallel.ser()));
        }
        o.push(("kinds".into(), self.kinds.ser()));
        Value::Obj(o)
    }
}

impl Deserialize for HostProfile {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for HostProfile"))?;
        let f = |name: &str| serde::field(entries, name, "HostProfile");
        Ok(HostProfile {
            label: f("label").and_then(String::deser)?,
            schema_version: f("schema_version").and_then(u64::deser)?,
            scheme: f("scheme").and_then(String::deser)?,
            seed: f("seed").and_then(u64::deser)?,
            requests: f("requests").and_then(u64::deser)?,
            events: f("events").and_then(u64::deser)?,
            wall_s: f("wall_s").and_then(f64::deser)?,
            events_per_sec: f("events_per_sec").and_then(f64::deser)?,
            peak_rss_kb: f("peak_rss_kb").and_then(u64::deser)?,
            stride: f("stride").and_then(u64::deser)?,
            attributed_ns: f("attributed_ns").and_then(u64::deser)?,
            host: f("host").and_then(HostMeta::deser)?,
            queue: f("queue").and_then(QueueStats::deser)?,
            alloc: match v.get("alloc") {
                Some(alloc) => Some(AllocStats::deser(alloc)?),
                None => None,
            },
            parallel: match v.get("parallel") {
                Some(parallel) => Some(ParallelPerf::deser(parallel)?),
                None => None,
            },
            kinds: f("kinds").and_then(Vec::<KindRecord>::deser)?,
        })
    }
}

/// The on-disk perf history: `schema_version` plus append-only runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfArtifact {
    /// The run records, oldest first.
    pub runs: Vec<HostProfile>,
}

impl PerfArtifact {
    /// Parses any shape a BENCH_PERF.json file has ever had:
    ///
    /// * a versioned artifact (`schema_version` + `runs`),
    /// * a single [`HostProfile`] (`schema_version` + `kinds`, as
    ///   written by `simulate --perf`), wrapped as a one-run artifact,
    /// * the legacy flat `label → {events, events_per_sec, peak_rss_kb,
    ///   wall_clock_s}` map, upgraded entry by entry.
    ///
    /// # Errors
    ///
    /// Describes the first shape mismatch.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        if v.get("schema_version").is_some() {
            let version = v
                .get("schema_version")
                .and_then(|n| u64::deser(n).ok())
                .ok_or("schema_version is not an integer")?;
            if version != PERF_SCHEMA_VERSION {
                return Err(format!(
                    "unsupported perf schema_version {version} (expected {PERF_SCHEMA_VERSION})"
                ));
            }
            if let Some(runs) = v.get("runs") {
                let runs = Vec::<HostProfile>::deser(runs).map_err(|e| e.to_string())?;
                return Ok(PerfArtifact { runs });
            }
            // A bare profile file from `simulate --perf`.
            let profile = HostProfile::deser(v).map_err(|e| e.to_string())?;
            return Ok(PerfArtifact {
                runs: vec![profile],
            });
        }
        let entries = v.as_obj().ok_or("perf artifact is not a JSON object")?;
        let mut runs = Vec::with_capacity(entries.len());
        for (label, entry) in entries {
            let num = |name: &str| {
                entry
                    .get(name)
                    .and_then(|n| f64::deser(n).ok())
                    .ok_or_else(|| format!("legacy entry {label:?}: missing number {name:?}"))
            };
            runs.push(HostProfile::from_legacy(
                label,
                num("events")? as u64,
                num("events_per_sec")?,
                num("peak_rss_kb")? as u64,
                num("wall_clock_s")?,
            ));
        }
        Ok(PerfArtifact { runs })
    }
}

impl Serialize for PerfArtifact {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            (
                "schema_version".into(),
                Value::U(u128::from(PERF_SCHEMA_VERSION)),
            ),
            ("runs".into(), self.runs.ser()),
        ])
    }
}

impl Deserialize for PerfArtifact {
    fn deser(v: &Value) -> Result<Self, DeError> {
        PerfArtifact::from_value(v).map_err(DeError::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> HostProfile {
        HostProfile {
            label: "smoke/CliRS".into(),
            schema_version: PERF_SCHEMA_VERSION,
            scheme: "CliRS".into(),
            seed: 1,
            requests: 2_000,
            events: 18_000,
            wall_s: 0.004,
            events_per_sec: 4_500_000.0,
            peak_rss_kb: 6_900,
            stride: 7,
            attributed_ns: 3_800_000,
            host: HostMeta {
                commit: "ab12cd3".into(),
                cpu: "Test CPU".into(),
                cores: 8,
            },
            queue: QueueStats {
                pushes: 18_010,
                pops: 18_010,
                high_water: 420,
                depth_hist: vec![1, 2, 4, 8],
            },
            alloc: None,
            parallel: None,
            kinds: vec![
                KindRecord {
                    kind: "Generate".into(),
                    layer: "state".into(),
                    count: 2_000,
                    sampled: 280,
                    self_ns: 400_000,
                },
                KindRecord {
                    kind: "ServerDone".into(),
                    layer: "server".into(),
                    count: 16_000,
                    sampled: 2_290,
                    self_ns: 3_400_000,
                },
            ],
        }
    }

    #[test]
    fn host_profile_round_trips_and_omits_absent_alloc() {
        let p = profile();
        let line = serde_json::to_string(&p).unwrap();
        assert!(!line.contains("alloc"), "{line}");
        assert!(line.contains("\"schema_version\":1"), "{line}");
        let back: HostProfile = serde_json::from_str(&line).unwrap();
        assert_eq!(back, p);

        let mut with_alloc = p;
        with_alloc.alloc = Some(AllocStats {
            allocs: 120,
            deallocs: 100,
            peak_bytes: 9_000_000,
        });
        let line = serde_json::to_string(&with_alloc).unwrap();
        let back: HostProfile = serde_json::from_str(&line).unwrap();
        assert_eq!(back, with_alloc);
    }

    #[test]
    fn host_profile_round_trips_parallel_block_and_omits_it_when_absent() {
        let p = profile();
        let line = serde_json::to_string(&p).unwrap();
        assert!(!line.contains("parallel"), "{line}");

        let mut with_parallel = p;
        with_parallel.parallel = Some(ParallelPerf {
            shards: 4,
            threads: 2,
            windows: 4_882,
            events_per_window: 1.65,
            busy_imbalance: 1.29,
        });
        let line = serde_json::to_string(&with_parallel).unwrap();
        assert!(line.contains("\"parallel\""), "{line}");
        let back: HostProfile = serde_json::from_str(&line).unwrap();
        assert_eq!(back, with_parallel);
    }

    #[test]
    fn artifact_round_trips_and_wraps_bare_profiles() {
        let art = PerfArtifact {
            runs: vec![profile()],
        };
        let text = serde_json::to_string(&art).unwrap();
        let back: PerfArtifact = serde_json::from_str(&text).unwrap();
        assert_eq!(back, art);

        // A bare `simulate --perf` file parses as a one-run artifact.
        let bare = serde_json::to_string(&profile()).unwrap();
        let v: Value = serde_json::from_str(&bare).unwrap();
        let wrapped = PerfArtifact::from_value(&v).unwrap();
        assert_eq!(wrapped.runs, vec![profile()]);
    }

    #[test]
    fn legacy_map_upgrades_into_v1_runs() {
        let legacy = r#"{
            "before/CliRS": {"events": 100, "events_per_sec": 50.5,
                             "peak_rss_kb": 640, "wall_clock_s": 1.98},
            "after/CliRS": {"events": 100, "events_per_sec": 99.0,
                            "peak_rss_kb": 512, "wall_clock_s": 1.01}
        }"#;
        let v: Value = serde_json::from_str(legacy).unwrap();
        let art = PerfArtifact::from_value(&v).unwrap();
        assert_eq!(art.runs.len(), 2);
        let first = &art.runs[0];
        assert_eq!(first.label, "before/CliRS");
        assert_eq!(first.scheme, "CliRS");
        assert_eq!(first.events, 100);
        assert_eq!(first.peak_rss_kb, 640);
        assert!(first.kinds.is_empty());
        assert_eq!(first.host, HostMeta::unknown());
        assert_eq!(first.stride, 0);
    }

    #[test]
    fn unsupported_schema_version_is_rejected() {
        let v: Value = serde_json::from_str(r#"{"schema_version": 99, "runs": []}"#).unwrap();
        let err = PerfArtifact::from_value(&v).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn kind_table_matches_ev_variants() {
        // Spot-check the index → (name, layer) mapping against real
        // events at both ends of the enum.
        assert_eq!(Ev::Generate { gen: 0 }.kind_index(), 0);
        assert_eq!(EV_KINDS[0], ("Generate", "state"));
        assert_eq!(Ev::OverloadCheck.kind_index(), 10);
        assert_eq!(EV_KINDS[10], ("OverloadCheck", "policy"));
        assert_eq!(Ev::Sample.kind_index(), 12);
        assert_eq!(EV_KINDS[12], ("Sample", "state"));
        assert_eq!(kind_names().len(), EV_KINDS.len());
        // Names must be unique: the analyzer keys tables on them.
        let mut names: Vec<_> = kind_names().to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EV_KINDS.len());
    }

    #[test]
    fn depth_hist_trimming_drops_trailing_zeroes_only() {
        let mut hist = [0u64; DEPTH_BUCKETS];
        hist[0] = 3;
        hist[2] = 1;
        assert_eq!(HostProfile::trim_depth_hist(&hist), vec![3, 0, 1]);
        assert_eq!(
            HostProfile::trim_depth_hist(&[0; DEPTH_BUCKETS]),
            Vec::<u64>::new()
        );
    }
}
