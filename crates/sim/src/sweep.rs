//! Parallel multi-core sweep execution: a (config × seed) grid fanned
//! out across worker threads, merged into one deterministic artifact.
//!
//! The executor is a work-stealing-free job pool: jobs sit in a fixed
//! vector, workers claim the next index from an atomic counter, and
//! each result lands in its job's slot — so the merged output order is
//! the job order, independent of thread scheduling. [`run_sweep`] sorts
//! the grid by `(label, seed, shards)` before running, which makes the
//! artifact's cell order — and therefore its bytes, modulo wall-clock
//! fields — deterministic for a given grid.
//!
//! Each cell is an independent full simulation (its own [`Cluster`],
//! RNG tree, and engine), so the fan-out cannot perturb results: the
//! per-cell statistics are byte-identical to running the same
//! configuration alone. `runner::run_seeds` is rebuilt on this executor.
//!
//! [`Cluster`]: crate::cluster::Cluster

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crossbeam::thread;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::runner::{run, run_sharded, run_sharded_parallel};
use crate::stats::RunStats;

/// Version stamp on every [`SweepReport`] artifact; bump on any schema
/// change so offline consumers can reject files they don't understand.
pub const SWEEP_SCHEMA_VERSION: u32 = 1;

/// One (config, seed) job of a sweep grid.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Config key the artifact is sorted and rendered by (typically the
    /// scheme label, plus whatever the sweep varies).
    pub label: String,
    /// The configuration to run (its `seed` is overwritten per job).
    pub cfg: SimConfig,
    /// The seed for this cell.
    pub seed: u64,
    /// Event shards per run: `<= 1` runs the sequential engine, more
    /// runs the sharded engine ([`crate::run_sharded`]).
    pub shards: u32,
}

/// One completed cell of the sweep grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// The job's config key.
    pub label: String,
    /// The seed the cell ran under.
    pub seed: u64,
    /// Event shards the run used (1 = sequential engine).
    pub shards: u32,
    /// Wall-clock seconds this cell's simulation took.
    pub wall_s: f64,
    /// The run's full statistics.
    pub stats: RunStats,
}

/// The merged sweep artifact: every cell of the grid plus the sweep's
/// own wall-clock accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Artifact schema version ([`SWEEP_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Worker threads the parallel pass used.
    pub threads: u64,
    /// Wall-clock seconds for the parallel pass over the grid.
    pub wall_s: f64,
    /// Wall-clock seconds for the single-threaded baseline pass, if one
    /// was measured.
    pub sequential_wall_s: Option<f64>,
    /// `sequential_wall_s / wall_s`, if a baseline was measured.
    pub speedup: Option<f64>,
    /// The grid cells, sorted by `(label, seed, shards)`.
    pub cells: Vec<SweepCell>,
}

/// Resolves a worker-count request: `0` means one worker per available
/// core, and there is never a point in more workers than jobs. With
/// `cell_threads > 1` each worker's cell spins up its own shard pool, so
/// the worker count is capped at `cores / cell_threads` — workers times
/// per-cell threads never oversubscribes the machine (floored at one
/// worker; a single cell may still use more threads than cores, which is
/// the user's explicit request).
fn effective_threads(requested: usize, jobs: usize, cell_threads: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { cores } else { requested };
    let t = if cell_threads > 1 {
        t.min((cores / cell_threads).max(1))
    } else {
        t
    };
    t.min(jobs).max(1)
}

/// Runs every job of the grid on `threads` workers (`0` = one per
/// core). `out[i]` is `jobs[i]`'s cell — output order is job order, so
/// thread scheduling never reaches the artifact.
///
/// # Panics
///
/// Panics if a job's configuration is invalid or a worker panics.
#[must_use]
pub fn run_grid(jobs: &[SweepJob], threads: usize) -> Vec<SweepCell> {
    run_grid_with_cell_threads(jobs, threads, 1)
}

/// [`run_grid`] with an intra-cell thread budget: multi-shard jobs run
/// on the parallel window driver ([`run_sharded_parallel`]) with
/// `cell_threads` workers each, and the outer worker count is capped so
/// workers × cell threads never oversubscribes the machine. Cell results
/// are byte-identical whatever `cell_threads` is set to — the replica
/// engine's merge is thread-invariant — so this only moves wall-clock
/// around. `cell_threads <= 1` is exactly [`run_grid`].
///
/// # Panics
///
/// Panics if a job's configuration is invalid or a worker panics.
#[must_use]
pub fn run_grid_with_cell_threads(
    jobs: &[SweepJob],
    threads: usize,
    cell_threads: usize,
) -> Vec<SweepCell> {
    let threads = effective_threads(threads, jobs.len(), cell_threads);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepCell>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let started = Instant::now();
                let mut cfg = job.cfg.clone();
                cfg.seed = job.seed;
                let stats = if job.shards > 1 && cell_threads > 1 {
                    run_sharded_parallel(cfg, job.shards, cell_threads)
                } else if job.shards > 1 {
                    run_sharded(cfg, job.shards)
                } else {
                    run(cfg)
                };
                *slots[i].lock().expect("sweep slot") = Some(SweepCell {
                    label: job.label.clone(),
                    seed: job.seed,
                    shards: job.shards.max(1),
                    wall_s: started.elapsed().as_secs_f64(),
                    stats,
                });
            });
        }
    })
    .expect("crossbeam scope");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("sweep slot").expect("every job ran"))
        .collect()
}

/// Runs a sweep grid in parallel and merges the results into one
/// [`SweepReport`]. The grid is sorted by `(label, seed, shards)`
/// first, so the artifact's cell order is deterministic regardless of
/// the order jobs were declared in or finished in. With `baseline` set,
/// the same grid runs again on one worker and the report carries the
/// measured wall-clock speedup.
///
/// # Panics
///
/// Panics if a job's configuration is invalid or a worker panics.
#[must_use]
pub fn run_sweep(jobs: Vec<SweepJob>, threads: usize, baseline: bool) -> SweepReport {
    run_sweep_with_cell_threads(jobs, threads, 1, baseline)
}

/// [`run_sweep`] with an intra-cell thread budget (see
/// [`run_grid_with_cell_threads`]). The baseline pass keeps the same
/// `cell_threads`, so the measured speedup isolates the outer fan-out.
///
/// # Panics
///
/// Panics if a job's configuration is invalid or a worker panics.
#[must_use]
pub fn run_sweep_with_cell_threads(
    mut jobs: Vec<SweepJob>,
    threads: usize,
    cell_threads: usize,
    baseline: bool,
) -> SweepReport {
    jobs.sort_by(|a, b| {
        (a.label.as_str(), a.seed, a.shards).cmp(&(b.label.as_str(), b.seed, b.shards))
    });
    let threads = effective_threads(threads, jobs.len(), cell_threads);
    let started = Instant::now();
    let cells = run_grid_with_cell_threads(&jobs, threads, cell_threads);
    let wall_s = started.elapsed().as_secs_f64();
    let (sequential_wall_s, speedup) = if baseline {
        let started = Instant::now();
        let _ = run_grid_with_cell_threads(&jobs, 1, cell_threads);
        let seq = started.elapsed().as_secs_f64();
        (Some(seq), (wall_s > 0.0).then(|| seq / wall_s))
    } else {
        (None, None)
    };
    SweepReport {
        schema_version: SWEEP_SCHEMA_VERSION,
        threads: threads as u64,
        wall_s,
        sequential_wall_s,
        speedup,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn tiny(scheme: Scheme, seed: u64) -> SimConfig {
        let mut cfg = SimConfig::small();
        cfg.requests = 800;
        cfg.scheme = scheme;
        cfg.seed = seed;
        cfg
    }

    fn grid() -> Vec<SweepJob> {
        let mut jobs = Vec::new();
        for scheme in [Scheme::NetRsToR, Scheme::CliRs] {
            for seed in [5u64, 4, 3] {
                jobs.push(SweepJob {
                    label: scheme.label().into(),
                    cfg: tiny(scheme, seed),
                    seed,
                    shards: 1,
                });
            }
        }
        jobs
    }

    #[test]
    fn grid_output_order_is_job_order() {
        let jobs = grid();
        let cells = run_grid(&jobs, 3);
        assert_eq!(cells.len(), jobs.len());
        for (job, cell) in jobs.iter().zip(&cells) {
            assert_eq!(job.label, cell.label);
            assert_eq!(job.seed, cell.seed);
            assert_eq!(cell.stats.completed, 800);
        }
    }

    #[test]
    fn sweep_cells_are_sorted_and_deterministic() {
        let a = run_sweep(grid(), 4, false);
        let b = run_sweep(grid(), 2, false);
        assert_eq!(a.schema_version, SWEEP_SCHEMA_VERSION);
        let keys: Vec<(&str, u64)> = a.cells.iter().map(|c| (c.label.as_str(), c.seed)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "cells must be sorted by (label, seed)");
        // Same grid, different thread counts: identical simulation bytes.
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(
                serde_json::to_string(&x.stats).expect("stats serialize"),
                serde_json::to_string(&y.stats).expect("stats serialize"),
                "{} seed {}: thread count leaked into results",
                x.label,
                x.seed
            );
        }
    }

    #[test]
    fn baseline_pass_records_speedup_fields() {
        let mut jobs = grid();
        jobs.truncate(2);
        let report = run_sweep(jobs, 2, true);
        let seq = report.sequential_wall_s.expect("baseline measured");
        let speedup = report.speedup.expect("speedup derived");
        assert!(seq > 0.0);
        assert!(speedup > 0.0);
        assert!((speedup - seq / report.wall_s).abs() < 1e-9);
    }

    #[test]
    fn cell_threads_cap_worker_budget() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        // cell_threads == 1 keeps the historical resolution untouched,
        // including explicit over-subscription requests.
        assert_eq!(effective_threads(0, 64, 1), cores.min(64));
        assert_eq!(effective_threads(8, 64, 1), 8);
        // With an intra-cell budget, workers never exceed cores /
        // cell_threads (floored at one worker).
        for ct in [2usize, 3, 4, 8] {
            for req in [0usize, 1, 2, 8, 64] {
                let w = effective_threads(req, 64, ct);
                assert!(w >= 1);
                assert!(
                    w <= (cores / ct).max(1),
                    "{req} workers requested with cell_threads={ct}: got {w} on {cores} cores"
                );
                if req != 0 {
                    assert!(w <= req);
                }
            }
        }
        // Never more workers than jobs.
        assert_eq!(effective_threads(0, 1, 2), 1);
    }

    #[test]
    fn cell_threads_do_not_change_cell_bytes() {
        // Replica-eligible scheme on 4 shards: the parallel window driver
        // must produce the same bytes for any intra-cell thread count.
        let jobs = vec![SweepJob {
            label: "clirs/4shard".into(),
            cfg: tiny(Scheme::CliRs, 9),
            seed: 9,
            shards: 4,
        }];
        let a = run_grid_with_cell_threads(&jobs, 1, 2);
        let b = run_grid_with_cell_threads(&jobs, 2, 3);
        assert_eq!(
            serde_json::to_string(&a[0].stats).expect("stats serialize"),
            serde_json::to_string(&b[0].stats).expect("stats serialize"),
            "cell thread count leaked into results"
        );
        assert_eq!(
            serde_json::to_string(&a[0].stats).expect("stats serialize"),
            serde_json::to_string(&crate::runner::run_sharded_parallel(
                tiny(Scheme::CliRs, 9),
                4,
                2
            ))
            .expect("stats serialize"),
            "grid cell must match a direct parallel run"
        );
    }

    #[test]
    fn sharded_jobs_run_the_sharded_engine() {
        let jobs = vec![SweepJob {
            label: "netrs-tor/4shard".into(),
            cfg: tiny(Scheme::NetRsToR, 9),
            seed: 9,
            shards: 4,
        }];
        let cells = run_grid(&jobs, 1);
        assert_eq!(cells[0].shards, 4);
        assert_eq!(
            serde_json::to_string(&cells[0].stats).expect("stats serialize"),
            serde_json::to_string(&run_sharded(tiny(Scheme::NetRsToR, 9), 4))
                .expect("stats serialize"),
        );
    }
}
