//! Shared simulation state the layers operate on.
//!
//! [`Core`] owns everything that is the same for all four schemes: the
//! workload (generators, Zipf keys, the consistent-hash ring), client and
//! request bookkeeping, the [`Fabric`] and [`ServerPool`] layers, and the
//! always-on result accounting (latency histograms, phase breakdown,
//! trace stream, sampler). Scheme-conditional behavior lives behind
//! [`crate::policy::SchemePolicy`]; policies receive `&mut Core` at every
//! decision point.

use netrs_faults::{AvailabilityStats, FaultEvent, FaultPlan, LinkRef};
use netrs_kvstore::{Ring, ServerId, ServerStatus, VersionTable};
use netrs_simcore::{
    DeviceCounter, DeviceId, DeviceProbe, EventQueue, Histogram, SimDuration, SimRng, SimTime, Zipf,
};
use netrs_topology::{FatTree, HostId, Link, SwitchId};

use crate::cluster::{Ev, ReqId};
use crate::config::{SimConfig, WriteConsistency};
use crate::dense::RequestTable;
use crate::fabric::{DeviceCapacities, Fabric, HopSink};
use crate::obs::{ControlLog, DeviceStatsReport, SamplerSpec, TimeSeries, TraceRecord};
use crate::policy::{ControlStats, ReplyInfo};
use crate::server::{ServerPool, ServerToken};
use crate::stats::{LatencyBreakdown, RunStats, RwStats};

/// Simulated size of one request packet on the wire (the NetRS request
/// header; payloads are not modelled).
pub(crate) const REQ_BYTES: u64 = netrs_wire::REQUEST_HEADER_LEN as u64;
/// Simulated size of one response packet (fixed NetRS response fields).
pub(crate) const RESP_BYTES: u64 = netrs_wire::RESPONSE_FIXED_LEN as u64;

/// The flow hash ECMP spreads a copy's packets with. Pure in `(req,
/// salt)` so replies replay the request's path decisions.
pub(crate) fn flow_hash(req: ReqId, salt: u64) -> u64 {
    netrs_kvstore::hash64(req.0 ^ salt.wrapping_mul(0x9E37_79B9))
}

/// One logical client request in flight.
#[derive(Debug)]
pub(crate) struct RequestState {
    pub(crate) client: u32,
    pub(crate) rgid: u32,
    pub(crate) issue_idx: u64,
    pub(crate) sent_at: SimTime,
    pub(crate) backup: ServerId,
    pub(crate) primary: Option<ServerId>,
    pub(crate) completed: bool,
    pub(crate) copies: u8,
    pub(crate) dup_sent: bool,
    pub(crate) is_write: bool,
    /// The requested key (stale checks and cache invalidation need it).
    pub(crate) key: u64,
    /// Replica commits acknowledged so far (quorum writes only).
    pub(crate) acks: u8,
}

/// Scheme-independent per-client state. Selectors and rate controllers
/// are per-scheme and live in the policy.
pub(crate) struct ClientState {
    pub(crate) host: HostId,
    /// The client's own completed-request latencies (feeds the CliRS-R95
    /// duplicate deadline; recorded for every scheme).
    pub(crate) hist: Histogram,
    /// Per-client stream for backup-replica picks.
    pub(crate) rng: SimRng,
}

/// Virtual-time sampler state (present only when enabled).
struct SamplerState {
    interval: SimDuration,
    series: TimeSeries,
    /// Aggregate accelerator busy core-ns at the previous tick, for
    /// windowed utilization.
    last_busy_core_ns: u128,
    last_tick: SimTime,
}

/// Per-phase histograms feeding [`LatencyBreakdown`]. Always on: four
/// `record_nanos` calls per completed read are noise next to the event
/// loop, and `RunStats` must carry a populated breakdown for every run.
struct BreakdownHists {
    network: Histogram,
    selection: Histogram,
    server_queue: Histogram,
    service: Histogram,
}

impl BreakdownHists {
    fn new() -> Self {
        BreakdownHists {
            network: Histogram::new(),
            selection: Histogram::new(),
            server_queue: Histogram::new(),
            service: Histogram::new(),
        }
    }

    fn merge(&mut self, other: &BreakdownHists) {
        self.network.merge(&other.network);
        self.selection.merge(&other.selection);
        self.server_queue.merge(&other.server_queue);
        self.service.merge(&other.service);
    }

    fn summarize(&self) -> LatencyBreakdown {
        LatencyBreakdown {
            count: self.network.count(),
            network: self.network.summary(),
            selection: self.selection.summary(),
            server_queue: self.server_queue.summary(),
            service: self.service.summary(),
        }
    }
}

/// Runtime state of the fault-injection subsystem. Present on the
/// [`Core`] only when the run was given an *active* fault plan, so
/// fault-free runs never arm the timeout machinery and stay
/// byte-identical to runs built before the subsystem existed.
pub(crate) struct FaultRuntime {
    pub(crate) plan: FaultPlan,
    /// Stream for packet-loss-burst coin flips (fork 50_000 of the root).
    rng: SimRng,
    /// Current loss-burst drop probability (meaningful until
    /// `loss_until`).
    loss_probability: f64,
    loss_until: SimTime,
    faults_injected: u64,
    timeouts: u64,
    retries: u64,
    duplicate_drops: u64,
    copies_dropped: u64,
    /// When the most recent fault fired (recovery is measured from
    /// here).
    last_fault_at: Option<SimTime>,
    /// Steady-state mean read latency, snapshotted when the first fault
    /// fires (the recovery band is relative to this).
    steady_mean: Option<SimDuration>,
    /// Read completions observed between the first fault and detected
    /// recovery (feeds `failed_window_p99`).
    fault_hist: Histogram,
    window_start: SimTime,
    window_sum_ns: u128,
    window_count: u64,
    /// A timeout, retry, or dropped copy happened inside the current
    /// observation window, disqualifying it as "recovered".
    window_disrupted: bool,
    recovered_at: Option<SimTime>,
}

impl FaultRuntime {
    fn new(plan: FaultPlan, root: &SimRng) -> Self {
        FaultRuntime {
            rng: root.fork(50_000),
            loss_probability: 0.0,
            loss_until: SimTime::ZERO,
            faults_injected: 0,
            timeouts: 0,
            retries: 0,
            duplicate_drops: 0,
            copies_dropped: 0,
            last_fault_at: None,
            steady_mean: None,
            fault_hist: Histogram::new(),
            window_start: SimTime::ZERO,
            window_sum_ns: 0,
            window_count: 0,
            window_disrupted: false,
            recovered_at: None,
            plan,
        }
    }

    /// A disruption (timeout / retry / lost copy) voids the current
    /// recovery observation window.
    fn disrupt(&mut self) {
        self.window_disrupted = true;
    }
}

/// What one workload-generator firing produced, for the cluster to
/// dispatch: reads go to the policy's steer point, writes to its
/// invalidation hook.
pub(crate) enum GenOutcome {
    /// Workload exhausted (or the firing produced nothing to route).
    None,
    /// A read that needs the policy to steer it.
    Read {
        /// The request.
        req: ReqId,
        /// Its replica set.
        replicas: Vec<ServerId>,
    },
    /// A write already fanned out to its replica group; policies with
    /// hot-key caches emit coherence messages for it.
    Write {
        /// The request.
        req: ReqId,
        /// The written key.
        key: u64,
    },
}

/// What [`Core::retry_decision`] told the cluster to do about a request
/// whose retry timer fired.
pub(crate) enum RetryAction {
    /// Request completed (or was already resolved): nothing to do.
    Done,
    /// Request abandoned and counted as a timeout.
    Abandon,
    /// Re-steer the read through the policy and arm the next check.
    Retry {
        replicas: Vec<ServerId>,
        primary: Option<ServerId>,
    },
}

/// The scheme-independent cluster state: fabric + servers + clients +
/// workload + results.
pub(crate) struct Core<D: DeviceProbe> {
    pub(crate) cfg: SimConfig,
    pub(crate) fabric: Fabric<D>,
    pub(crate) servers: ServerPool,
    pub(crate) ring: Ring,
    zipf: Zipf,
    pub(crate) server_hosts: Vec<HostId>,
    pub(crate) clients: Vec<ClientState>,
    pub(crate) requests: RequestTable<RequestState>,
    pub(crate) issued: u64,
    pub(crate) completed: u64,
    /// Redundant copies sent (bumped by the R95 policy).
    pub(crate) duplicates: u64,
    /// Controller re-plans performed (bumped by the NetRS-ILP policy).
    pub(crate) replans: u64,
    /// Operators degraded for overload (bumped by in-network policies).
    pub(crate) overload_events: u64,
    warmup_cutoff: u64,
    pub(crate) hist: Histogram,
    write_hist: Histogram,
    writes_issued: u64,
    writes_completed: u64,
    /// Per-key committed version counters, bumped at write issue. The
    /// store's ground truth for cache stale checks.
    pub(crate) versions: VersionTable,
    /// Per-shard workload streams (`root.fork(2).split(s, shards)`);
    /// generator `g` draws from stream `g % shards`. At `shards == 1`
    /// this is the single pre-shard stream, byte-identical draws.
    workload: Vec<SimRng>,
    /// Event shards the world is partitioned into (`>= 1`). Pods map to
    /// shards round-robin (`pod % shards`).
    shards: u32,
    /// Home shard of every host (its pod, modulo the shard count).
    host_shard: Vec<u32>,
    /// Home shard of every switch; core switches (no pod) go to shard 0.
    switch_shard: Vec<u32>,
    gen_interarrival: SimDuration,
    pub(crate) top_clients: u32,
    breakdown: BreakdownHists,
    tracer: Option<Box<dyn std::io::Write + Send>>,
    sampler: Option<SamplerState>,
    /// Control-plane observability sink; `None` (the default) skips all
    /// control-stream emission.
    control: Option<ControlLog>,
    /// Fault-injection runtime; `None` unless an active fault plan was
    /// configured.
    pub(crate) faults: Option<FaultRuntime>,
    /// SPMD replica mode (parallel execution, DESIGN.md §13): when
    /// `Some`, this `Core` is one of N structurally identical replicas
    /// and only handles events homed on `ReplicaMode::shard`. Its
    /// generators issue strided request ids (`shard + k·shards`) against
    /// a per-shard quota, its clients are the shard-local subset, and
    /// reply routing runs off the token (no cross-replica request-table
    /// reads). `None` is the ordinary single-world mode.
    replica: Option<ReplicaMode>,
    /// Trace lines buffered for the post-run deterministic merge instead
    /// of being written inline (replica mode only).
    trace_buf: Option<Vec<(u64, String)>>,
}

/// Per-replica identity and workload split for parallel execution.
struct ReplicaMode {
    shard: u32,
    /// How many requests this replica's generators issue in total.
    quota: u64,
    /// Ascending indices of the clients homed on this shard.
    clients: Vec<u32>,
    /// Length of the `clients` prefix that are skew "top" clients
    /// (global top clients are `0..top_clients`, so the shard-local top
    /// set is always a prefix of the ascending `clients` list).
    top: u32,
    /// Conservative-window width in link latencies (default 1).
    lookahead_mult: u32,
}

impl<D: DeviceProbe> Core<D> {
    /// Builds the scheme-independent state for a validated, finalized
    /// configuration. Placement, ring, server and client RNG streams are
    /// pure forks of `root`, so construction order never matters.
    pub(crate) fn new(cfg: SimConfig, devices: D, root: &SimRng, shards: u32) -> Self {
        let topo = FatTree::new(cfg.arity).expect("validated arity");

        // Pod-granular shard maps: a pod's hosts and switches share a
        // shard, so intra-pod hops never cross the mailbox. Requests for
        // more shards than pods are clamped (extra shards would sit
        // empty except for round-robined generators).
        let shards = shards.clamp(1, topo.num_pods());
        let host_shard: Vec<u32> = (0..topo.num_hosts())
            .map(|h| topo.pod_of_host(HostId(h)) % shards)
            .collect();
        let switch_shard: Vec<u32> = (0..topo.num_switches())
            .map(|s| topo.pod_of_switch(SwitchId(s)).map_or(0, |p| p % shards))
            .collect();

        // Random non-overlapping placement of servers and clients
        // ("clients and servers are randomly deployed across end-hosts,
        // and each host only has one role", §V-A).
        let mut placement_rng = root.fork(0);
        let picks = placement_rng.sample_indices(
            topo.num_hosts() as usize,
            (cfg.servers + cfg.clients) as usize,
        );
        let mut picks: Vec<HostId> = picks.into_iter().map(|h| HostId(h as u32)).collect();
        placement_rng.shuffle(&mut picks);
        let server_hosts: Vec<HostId> = picks[..cfg.servers as usize].to_vec();
        let client_hosts: Vec<HostId> = picks[cfg.servers as usize..].to_vec();

        let ring = Ring::new(
            cfg.servers,
            cfg.vnodes,
            cfg.replication,
            root.fork(1).next_u64(),
        )
        .expect("validated ring parameters");
        let zipf = Zipf::new(cfg.keys, cfg.zipf);
        let servers = ServerPool::new(cfg.servers, &cfg.server, root);
        let clients: Vec<ClientState> = client_hosts
            .iter()
            .enumerate()
            .map(|(i, &host)| ClientState {
                host,
                hist: Histogram::new(),
                rng: root.fork(40_000 + i as u64),
            })
            .collect();
        let top_clients = (cfg.clients / 5).max(1);
        let faults = cfg
            .faults
            .as_ref()
            .filter(|p| p.is_active())
            .map(|p| FaultRuntime::new(p.clone(), root));

        Core {
            warmup_cutoff: (cfg.requests as f64 * cfg.warmup_fraction) as u64,
            gen_interarrival: SimDuration::from_secs_f64(
                f64::from(cfg.generators) / cfg.arrival_rate(),
            ),
            workload: {
                let stream = root.fork(2);
                (0..shards).map(|s| stream.split(s, shards)).collect()
            },
            shards,
            host_shard,
            switch_shard,
            fabric: Fabric::new(topo, cfg.link_latency, devices),
            servers,
            ring,
            zipf,
            server_hosts,
            clients,
            requests: RequestTable::with_capacity(1024),
            issued: 0,
            completed: 0,
            duplicates: 0,
            replans: 0,
            overload_events: 0,
            hist: Histogram::new(),
            write_hist: Histogram::new(),
            writes_issued: 0,
            writes_completed: 0,
            versions: VersionTable::default(),
            top_clients,
            breakdown: BreakdownHists::new(),
            tracer: None,
            sampler: None,
            control: None,
            faults,
            replica: None,
            trace_buf: None,
            cfg,
        }
    }

    // ---- replica mode (parallel execution) -------------------------------

    /// Switches this core into SPMD replica mode for `shard`, issuing at
    /// most `quota` requests locally. Construction is a pure fork tree of
    /// the seed, so every replica starts bit-identical; from here on only
    /// this shard's entities evolve.
    pub(crate) fn enable_replica(&mut self, shard: u32, quota: u64, lookahead_mult: u32) {
        let clients: Vec<u32> = (0..self.cfg.clients)
            .filter(|&c| self.client_shard(c) == shard)
            .collect();
        let top = clients.partition_point(|&c| c < self.top_clients) as u32;
        self.replica = Some(ReplicaMode {
            shard,
            quota,
            clients,
            top,
            lookahead_mult: lookahead_mult.max(1),
        });
    }

    /// Conservative window width for replica-mode runs: the configured
    /// lookahead multiple of one link latency (1× is provably safe;
    /// wider windows trade exactness for fewer barriers, with
    /// violations clamped and counted as `mailbox_late`).
    pub(crate) fn replica_lookahead(&self) -> SimDuration {
        let mult = self.replica.as_ref().map_or(1, |r| r.lookahead_mult);
        SimDuration::from_nanos(self.cfg.link_latency.as_nanos() * u64::from(mult))
    }

    /// Whether every shard that hosts a generator also hosts at least one
    /// client (and, under demand skew, both a top and a non-top client),
    /// so the per-shard workload split can reproduce the global client
    /// distribution. Placement is deterministic per config, so checking
    /// one replica answers for all of them.
    pub(crate) fn replica_coverage_ok(&self) -> bool {
        let s = self.shards;
        let mut has_gen = vec![false; s as usize];
        for g in 0..self.cfg.generators {
            has_gen[(g % s) as usize] = true;
        }
        for r in 0..s {
            if !has_gen[r as usize] {
                continue;
            }
            let clients: Vec<u32> = (0..self.cfg.clients)
                .filter(|&c| self.client_shard(c) == r)
                .collect();
            if clients.is_empty() {
                return false;
            }
            if self.cfg.demand_skew.is_some() {
                let top = clients.partition_point(|&c| c < self.top_clients);
                if top == 0 || top == clients.len() {
                    return false;
                }
            }
        }
        true
    }

    /// Buffers trace records in memory (with their receive timestamps)
    /// instead of writing them to the tracer sink, so the runner can merge
    /// per-replica traces in canonical order after the run.
    pub(crate) fn buffer_trace(&mut self) {
        self.trace_buf = Some(Vec::new());
    }

    pub(crate) fn take_trace_buf(&mut self) -> Vec<(u64, String)> {
        self.trace_buf.take().unwrap_or_default()
    }

    /// Folds another replica's results into this one (the post-run merge,
    /// replica 0 absorbing shards 1..N). Counters and histograms sum;
    /// the servers the other replica owns (whose queues and busy time
    /// advanced only there) are adopted wholesale so fleet-wide
    /// utilization and occupancy read correctly.
    pub(crate) fn absorb_replica(&mut self, other: &mut Core<D>) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.duplicates += other.duplicates;
        self.replans += other.replans;
        self.overload_events += other.overload_events;
        self.writes_issued += other.writes_issued;
        self.writes_completed += other.writes_completed;
        self.hist.merge(&other.hist);
        self.write_hist.merge(&other.write_hist);
        self.breakdown.merge(&other.breakdown);
        let oshard = other.replica.as_ref().map_or(0, |r| r.shard);
        for s in 0..self.cfg.servers {
            if self.server_shard(ServerId(s)) == oshard {
                self.servers.adopt(&mut other.servers, s as usize);
            }
        }
        for &c in other
            .replica
            .as_ref()
            .map(|r| r.clients.as_slice())
            .unwrap_or(&[])
        {
            self.clients[c as usize]
                .hist
                .merge(&other.clients[c as usize].hist);
        }
    }

    /// Expected request rate of each client (requests/second), honouring
    /// the demand skew.
    pub(crate) fn client_rates(&self) -> Vec<(HostId, f64)> {
        let a = self.cfg.arrival_rate();
        let n = self.cfg.clients;
        let top = self.top_clients;
        self.clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let rate = match self.cfg.demand_skew {
                    None => a / f64::from(n),
                    Some(s) => {
                        if (i as u32) < top {
                            a * s / f64::from(top)
                        } else {
                            a * (1.0 - s) / f64::from(n - top)
                        }
                    }
                };
                (c.host, rate)
            })
            .collect()
    }

    // ---- sharding --------------------------------------------------------

    /// Number of event shards the world is partitioned into.
    pub(crate) fn shards(&self) -> u32 {
        self.shards
    }

    /// Home shard of `server` (its host's pod, modulo shard count).
    fn server_shard(&self, s: ServerId) -> u32 {
        self.host_shard[self.server_hosts[s.0 as usize].0 as usize]
    }

    /// Home shard of client `c`.
    fn client_shard(&self, c: u32) -> u32 {
        self.host_shard[self.clients[c as usize].host.0 as usize]
    }

    /// Home shard of the client that issued `req`. Terminal timers
    /// (retry checks, R95 deadlines) can outlive the request's table
    /// entry; those orphans go to shard 0 — any shard is correct for an
    /// event whose handler is a no-op, and 0 is deterministic.
    fn req_shard(&self, req: ReqId) -> u32 {
        self.requests
            .get(req.0)
            .map_or(0, |r| self.client_shard(r.client))
    }

    /// Classifies an event to its home shard: the pod of the device
    /// whose state its handler touches (DESIGN.md §13). Control-plane
    /// events with cluster-wide scope live on shard 0.
    pub(crate) fn shard_of_event(&self, ev: &Ev) -> u32 {
        if self.shards <= 1 {
            return 0;
        }
        if self.replica.is_some() {
            // Replica mode: the emitting replica cannot consult the
            // request table for events homed on another replica, so
            // replies route by the client carried on the token.
            if let Ev::ClientReceive { token, .. } = *ev {
                return self.client_shard(token.client);
            }
        }
        match *ev {
            Ev::Generate { gen } => gen % self.shards,
            Ev::GatedSend { req, .. } | Ev::R95Check { req } | Ev::RetryCheck { req, .. } => {
                self.req_shard(req)
            }
            Ev::RsnodeArrive { op, .. }
            | Ev::Select { op, .. }
            | Ev::SelectorUpdate { op, .. }
            | Ev::CacheInvalidate { op, .. } => self.switch_shard[op.0 as usize],
            Ev::OperatorDetect { sw } => self.switch_shard[sw.0 as usize],
            Ev::ServerArrive { token } => self.server_shard(token.server),
            Ev::ServerDone { server, .. } => self.server_shard(server),
            Ev::Fluctuate { server } => self.server_shard(server),
            Ev::ClientReceive { token, .. } => self.req_shard(token.req),
            Ev::OverloadCheck | Ev::Replan | Ev::Sample | Ev::Fault { .. } => 0,
        }
    }

    // ---- observability ---------------------------------------------------

    pub(crate) fn set_tracer(&mut self, w: Box<dyn std::io::Write + Send>) {
        self.tracer = Some(w);
    }

    pub(crate) fn flush_tracer(&mut self) {
        use std::io::Write as _;
        if let Some(w) = self.tracer.as_mut() {
            let _ = w.flush();
        }
    }

    pub(crate) fn set_control(&mut self, w: Box<dyn std::io::Write + Send>) {
        self.control = Some(ControlLog::new(w));
    }

    /// The control-plane sink, if one is attached. Policies emit through
    /// this; with `None` every emission site is a skipped branch.
    pub(crate) fn control_log(&mut self) -> Option<&mut ControlLog> {
        self.control.as_mut()
    }

    /// Closes still-open DRS failure spans at `now` and flushes the
    /// control sink (call after the run drains).
    pub(crate) fn flush_control(&mut self, now: SimTime) {
        if let Some(log) = self.control.as_mut() {
            log.finish(now.as_nanos());
        }
    }

    pub(crate) fn enable_sampler(&mut self, spec: SamplerSpec) {
        assert!(
            spec.interval > SimDuration::ZERO,
            "sampler interval must be positive"
        );
        self.sampler = Some(SamplerState {
            interval: spec.interval,
            series: TimeSeries::new(spec.capacity),
            last_busy_core_ns: 0,
            last_tick: SimTime::ZERO,
        });
    }

    pub(crate) fn take_timeseries(&mut self) -> Option<TimeSeries> {
        self.sampler.take().map(|s| s.series)
    }

    pub(crate) fn take_device_report(&mut self, now: SimTime) -> Option<DeviceStatsReport> {
        let caps = DeviceCapacities {
            accelerator_cores: self.cfg.accelerator.cores,
            server_slots: self.cfg.server.slots,
        };
        self.fabric.take_device_report(now, &caps)
    }

    // ---- event-queue priming --------------------------------------------

    /// Schedules the workload generators and server fluctuation timers
    /// (the scheme-independent half of priming; policies add their own
    /// control timers after this).
    pub(crate) fn prime_workload(&mut self, queue: &mut EventQueue<Ev>) {
        for gen in 0..self.cfg.generators {
            let shard = (gen % self.shards) as usize;
            let gap = self.workload[shard].exp_duration(self.gen_interarrival);
            queue.schedule_at(SimTime::ZERO + gap, Ev::Generate { gen });
        }
        for s in 0..self.cfg.servers {
            queue.schedule_after(
                self.cfg.server.fluctuation_interval,
                Ev::Fluctuate {
                    server: ServerId(s),
                },
            );
        }
    }

    /// Schedules every scripted fault from the plan's timeline as an
    /// ordinary engine event (no-op when no active plan is configured).
    pub(crate) fn prime_faults(&mut self, queue: &mut EventQueue<Ev>) {
        if let Some(f) = &self.faults {
            for (idx, ev) in f.plan.events.iter().enumerate() {
                queue.schedule_at(SimTime::ZERO + ev.at, Ev::Fault { idx: idx as u32 });
            }
        }
    }

    /// Schedules the sampler's first tick, if the sampler is enabled
    /// (last in priming order).
    pub(crate) fn prime_sampler(&mut self, queue: &mut EventQueue<Ev>) {
        if let Some(s) = &self.sampler {
            queue.schedule_after(s.interval, Ev::Sample);
        }
    }

    // ---- workload -------------------------------------------------------

    fn pick_client(&mut self, shard: usize) -> u32 {
        if let Some(r) = &self.replica {
            // Draw from this shard's own clients (the ascending local
            // list; its skew-top subset is the `..top` prefix). Same
            // stream discipline as the global draw, restricted to the
            // clients this replica owns.
            let rng = &mut self.workload[shard];
            return match self.cfg.demand_skew {
                None => r.clients[rng.below(r.clients.len() as u64) as usize],
                Some(s) => {
                    if rng.chance(s) {
                        r.clients[rng.below(u64::from(r.top)) as usize]
                    } else {
                        let rest = r.clients.len() as u64 - u64::from(r.top);
                        r.clients[r.top as usize + rng.below(rest) as usize]
                    }
                }
            };
        }
        let rng = &mut self.workload[shard];
        match self.cfg.demand_skew {
            None => rng.below(u64::from(self.cfg.clients)) as u32,
            Some(s) => {
                if rng.chance(s) {
                    rng.below(u64::from(self.top_clients)) as u32
                } else {
                    let rest = u64::from(self.cfg.clients - self.top_clients);
                    self.top_clients + rng.below(rest) as u32
                }
            }
        }
    }

    /// One workload-generator firing: draws the client, key and replica
    /// set, registers the request, and handles writes (replica-group
    /// fan-out under the configured consistency mode) directly. Returns
    /// what the cluster should route next: the read to steer, or the
    /// write for coherence hooks.
    pub(crate) fn generate(
        &mut self,
        now: SimTime,
        gen: u32,
        queue: &mut EventQueue<Ev>,
    ) -> GenOutcome {
        let quota = self.replica.as_ref().map_or(self.cfg.requests, |r| r.quota);
        if self.issued >= quota {
            return GenOutcome::None; // workload exhausted: let the generator die out
        }
        let shard = (gen % self.shards) as usize;
        let gap = self.workload[shard].exp_duration(self.gen_interarrival);
        queue.schedule_after(gap, Ev::Generate { gen });

        let client_idx = self.pick_client(shard);
        let key = self.zipf.sample(&mut self.workload[shard]);
        let rgid = self.ring.group_of_key(key);
        let replicas = self.ring.groups().replicas(rgid).to_vec();
        let backup = replicas[self.clients[client_idx as usize].rng.index(replicas.len())];

        let is_write =
            self.cfg.write_fraction > 0.0 && self.workload[shard].chance(self.cfg.write_fraction);
        // Replica mode strides request ids (`shard + k·shards`) so ids
        // are globally unique without cross-replica coordination; the
        // strided id doubles as the request's approximate global issue
        // position for the warmup cutoff.
        let req = match &self.replica {
            Some(r) => ReqId(u64::from(r.shard) + self.issued * u64::from(self.shards)),
            None => ReqId(self.issued),
        };
        self.requests.insert(
            req.0,
            RequestState {
                client: client_idx,
                rgid,
                issue_idx: req.0,
                sent_at: now,
                backup,
                primary: None,
                completed: false,
                copies: 0,
                dup_sent: false,
                is_write,
                key,
                acks: 0,
            },
        );
        self.issued += 1;
        self.fabric
            .devices
            .bump(DeviceId::Client(client_idx), DeviceCounter::Op, 1);
        if let Some(f) = &self.faults {
            // Only fault-injected runs arm the client timeout machinery,
            // so fault-free event streams are untouched.
            queue.schedule_after(f.plan.retry.timeout, Ev::RetryCheck { req, attempt: 0 });
        }

        if is_write {
            // Writes bypass replica selection: copies go to the replica
            // group directly and the configured consistency mode decides
            // when the client may acknowledge.
            self.writes_issued += 1;
            self.versions.bump(key);
            match self.cfg.write_consistency {
                WriteConsistency::All | WriteConsistency::Quorum { .. } => {
                    self.issue_write(now, req, &replicas, queue);
                }
                WriteConsistency::Chain => {
                    self.issue_write(now, req, &replicas[..1], queue);
                }
            }
            return GenOutcome::Write { req, key };
        }
        GenOutcome::Read { req, replicas }
    }

    /// Fans a write out to `replicas` (the whole group for `All`/`Quorum`,
    /// the chain head alone for `Chain`), one copy per target.
    fn issue_write(
        &mut self,
        now: SimTime,
        req: ReqId,
        replicas: &[ServerId],
        queue: &mut EventQueue<Ev>,
    ) {
        let state = self.requests.get_mut(req.0).expect("request just created");
        state.copies = replicas.len() as u8;
        let client_idx = state.client;
        let rgid = state.rgid;
        let client_host = self.clients[client_idx as usize].host;
        for (i, &server) in replicas.iter().enumerate() {
            let token = ServerToken::new(
                req,
                server,
                client_idx,
                rgid,
                true,
                now,
                now,
                SimDuration::ZERO,
                now,
                None,
            );
            let hash = flow_hash(req, 31 + i as u64);
            let Some(latency) = self.fabric.try_host_to_host(
                client_host,
                self.server_hosts[server.0 as usize],
                hash,
            ) else {
                self.drop_copy(req.0); // partitioned by link faults
                continue;
            };
            queue.schedule_after(latency, Ev::ServerArrive { token });
            if self.fabric.observing() {
                let sink = HopSink::Copy(req.0, server.0);
                self.fabric
                    .push_residency_hop(sink, DeviceId::Client(client_idx), now, now);
                self.fabric.observe_host_to_host(
                    now,
                    client_host,
                    self.server_hosts[server.0 as usize],
                    hash,
                    sink,
                    REQ_BYTES,
                );
            }
        }
    }

    /// Chain replication: after a replica commits a write copy, the
    /// update propagates server → server down the replica group; only
    /// the tail replies to the client, certifying the whole chain.
    /// Returns `true` when the copy was forwarded onward (or lost
    /// trying) and therefore must not produce a client reply.
    pub(crate) fn forward_chain_write(
        &mut self,
        now: SimTime,
        token: &ServerToken,
        queue: &mut EventQueue<Ev>,
    ) -> bool {
        if self.cfg.write_consistency != WriteConsistency::Chain {
            return false;
        }
        // Replica mode runs at a server shard that has no view of the
        // request table; the token carries the write flag, group, and
        // issue time the chain hop needs.
        let (is_write, rgid, client, sent_at) = if self.replica.is_some() {
            (token.is_write, token.rgid, token.client, token.issued_at)
        } else {
            let Some(state) = self.requests.get(token.req.0) else {
                return false;
            };
            (state.is_write, state.rgid, state.client, state.sent_at)
        };
        if !is_write {
            return false;
        }
        let replicas = self.ring.groups().replicas(rgid);
        let Some(idx) = replicas.iter().position(|&s| s == token.server) else {
            return false;
        };
        if idx + 1 >= replicas.len() {
            return false; // chain tail: the reply flows back to the client
        }
        let next = replicas[idx + 1];
        let req = token.req;
        let chain_token = ServerToken::new(
            req,
            next,
            client,
            rgid,
            true,
            sent_at,
            now,
            SimDuration::ZERO,
            now,
            None,
        );
        let hash = flow_hash(req, 31 + (idx + 1) as u64);
        let from_host = self.server_hosts[token.server.0 as usize];
        let next_host = self.server_hosts[next.0 as usize];
        let Some(latency) = self.fabric.try_host_to_host(from_host, next_host, hash) else {
            self.drop_copy(req.0); // chain severed by link faults
            return true;
        };
        queue.schedule_after(latency, Ev::ServerArrive { token: chain_token });
        if self.fabric.observing() {
            self.fabric.observe_host_to_host(
                now,
                from_host,
                next_host,
                hash,
                HopSink::Copy(req.0, next.0),
                REQ_BYTES,
            );
        }
        true
    }

    // ---- servers --------------------------------------------------------

    /// [`Ev::ServerArrive`] mechanics: hand the copy to its server. A
    /// crashed server drops the copy on the floor (the client timeout
    /// machinery recovers it).
    pub(crate) fn server_arrive(
        &mut self,
        now: SimTime,
        token: ServerToken,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.servers.is_down(token.server) {
            self.fabric
                .devices
                .bump(DeviceId::Server(token.server.0), DeviceCounter::Drop, 1);
            self.drop_copy(token.req.0);
            return;
        }
        self.servers.arrive(now, token, &mut self.fabric, queue);
    }

    /// [`Ev::ServerDone`] mechanics: completion bookkeeping at the server,
    /// then — if the logical request is still live — the copy's server
    /// residency hop. Returns the piggybacked status for reply routing,
    /// or `None` when the request was already cleaned up.
    pub(crate) fn finish_service(
        &mut self,
        now: SimTime,
        server_id: ServerId,
        token: &mut ServerToken,
        queue: &mut EventQueue<Ev>,
    ) -> Option<ServerStatus> {
        let status = self
            .servers
            .finish_service(now, server_id, token, &mut self.fabric, queue);
        // Replica mode: the request lives on the issuing client's
        // replica, not here; eligibility excludes faults, so it is
        // always still live and the liveness probe must be skipped.
        if self.replica.is_none() && !self.requests.contains(token.req.0) {
            // The request was resolved without this copy (fault runs:
            // abandoned after timing out). The reply has nowhere to go.
            if let Some(f) = &mut self.faults {
                f.duplicate_drops += 1;
            }
            return None;
        }
        if self.fabric.observing() {
            // The copy occupied the server from arrival (queue + service).
            self.fabric.push_residency_hop(
                HopSink::Copy(token.req.0, token.server.0),
                DeviceId::Server(server_id.0),
                token.server_arrived_at,
                now,
            );
        }
        Some(status)
    }

    /// Routes a response directly server → client (every reply path that
    /// does not detour through an RSNode: client schemes, writes, DRS).
    pub(crate) fn send_reply_direct(
        &mut self,
        now: SimTime,
        token: ServerToken,
        status: ServerStatus,
        queue: &mut EventQueue<Ev>,
    ) {
        let client = if self.replica.is_some() {
            // The request table lives on the client's replica; the token
            // carries everything reply routing needs.
            token.client
        } else {
            let Some(state) = self.requests.get(token.req.0) else {
                return;
            };
            state.client
        };
        let client_host = self.clients[client as usize].host;
        let server_host = self.server_hosts[token.server.0 as usize];
        let hash = flow_hash(token.req, 23);
        let Some(latency) = self.fabric.try_host_to_host(server_host, client_host, hash) else {
            self.drop_copy(token.req.0); // reply path severed by link faults
            return;
        };
        queue.schedule_after(latency, Ev::ClientReceive { token, status });
        if self.fabric.observing() {
            self.fabric.observe_host_to_host(
                now,
                server_host,
                client_host,
                hash,
                HopSink::Copy(token.req.0, token.server.0),
                RESP_BYTES,
            );
        }
    }

    // ---- clients --------------------------------------------------------

    /// [`Ev::ClientReceive`] mechanics: completion accounting, the trace
    /// record, the phase breakdown, and the latency histograms. Returns
    /// the reply context for the policy's feedback hooks, or `None` for
    /// writes (plain traffic: no selector feedback, no monitor counting).
    pub(crate) fn receive_reply(
        &mut self,
        now: SimTime,
        token: ServerToken,
        status: ServerStatus,
    ) -> Option<ReplyInfo> {
        let Some(state) = self.requests.get_mut(token.req.0) else {
            // A straggler reply for a request already resolved (fault
            // runs only: the client abandoned it after a timeout).
            if let Some(f) = &mut self.faults {
                f.duplicate_drops += 1;
            }
            return None;
        };
        state.copies = state.copies.saturating_sub(1);
        let client_idx = state.client as usize;
        let is_write = state.is_write;
        // Reads complete on the first response. Writes complete when the
        // consistency mode is satisfied: every outstanding copy answered
        // (`All`, and `Chain`, whose tail reply certifies the whole
        // chain), or the W-th replica commit (`Quorum` — late copies
        // keep draining after the ack).
        let first_completion = if is_write {
            if let WriteConsistency::Quorum { .. } = self.cfg.write_consistency {
                state.acks = state.acks.saturating_add(1);
                let required = self
                    .cfg
                    .write_consistency
                    .required_acks(self.cfg.replication);
                let done = !state.completed && u32::from(state.acks) >= required;
                if done {
                    debug_assert!(
                        u32::from(state.acks) >= required,
                        "quorum write acked below W"
                    );
                }
                done
            } else {
                state.copies == 0 && !state.completed
            }
        } else {
            !state.completed
        };
        if first_completion {
            state.completed = true;
            self.completed += 1;
        }
        let latency = now - state.sent_at;
        let issue_idx = state.issue_idx;
        let rgid = state.rgid;
        let drained = state.copies == 0;
        if drained {
            self.requests.remove(token.req.0);
        }

        // Phase decomposition: consecutive timestamp differences along
        // the copy's path, telescoping exactly to `now - issued_at`.
        let steer = token.steered_at - token.issued_at;
        let selection = token.copy_sent_at - token.steered_at;
        let to_server = token.server_arrived_at - token.copy_sent_at;
        let server_queue = token.service_started_at - token.server_arrived_at;
        let service = token.served_at - token.service_started_at;
        let reply = now - token.served_at;
        let hops = self.fabric.take_copy_hops(token.req.0, token.server.0);
        if self.tracer.is_some() || self.trace_buf.is_some() {
            use std::io::Write as _;
            let rec = TraceRecord {
                req: token.req.0,
                server: token.server.0,
                first: first_completion,
                write: is_write,
                issued_ns: token.issued_at.as_nanos(),
                received_ns: now.as_nanos(),
                steer_ns: steer.as_nanos(),
                selection_ns: selection.as_nanos(),
                selection_wait_ns: token.selection_wait.as_nanos(),
                to_server_ns: to_server.as_nanos(),
                server_queue_ns: server_queue.as_nanos(),
                service_ns: service.as_nanos(),
                reply_ns: reply.as_nanos(),
                e2e_ns: (now - token.issued_at).as_nanos(),
                hops,
            };
            let line = serde_json::to_string(&rec).expect("trace record serializes");
            if let Some(buf) = self.trace_buf.as_mut() {
                // Parallel runs buffer; the runner merges per-replica
                // buffers in canonical (receive time, shard) order.
                buf.push((now.as_nanos(), line));
            } else if let Some(w) = self.tracer.as_mut() {
                let _ = writeln!(w, "{line}");
            }
        }
        if first_completion && !is_write && issue_idx >= self.warmup_cutoff {
            self.breakdown.network.record(steer + to_server + reply);
            self.breakdown.selection.record(selection);
            self.breakdown.server_queue.record(server_queue);
            self.breakdown.service.record(service);
        }

        if is_write {
            if first_completion {
                self.writes_completed += 1;
                if issue_idx >= self.warmup_cutoff {
                    self.write_hist.record(latency);
                }
            }
            return None;
        }

        if first_completion {
            self.clients[client_idx].hist.record(latency);
            if issue_idx >= self.warmup_cutoff {
                self.hist.record(latency);
            }
            self.track_recovery(now, latency);
        }
        Some(ReplyInfo {
            token,
            status,
            client: client_idx as u32,
            rgid,
            first_completion,
        })
    }

    // ---- fault injection ------------------------------------------------

    /// Injects the plan's fault `idx` ([`Ev::Fault`] mechanics). Server,
    /// link, and packet-loss faults are applied here; operator faults are
    /// returned for the cluster to route to the scheme policy.
    pub(crate) fn inject_fault(&mut self, now: SimTime, idx: u32) -> Option<FaultEvent> {
        let ev = {
            let f = self.faults.as_ref()?;
            f.plan.events.get(idx as usize)?.fault
        };
        let steady = if self.hist.count() > 0 {
            Some(self.hist.mean())
        } else {
            None
        };
        let f = self.faults.as_mut().expect("checked above");
        f.faults_injected += 1;
        if f.steady_mean.is_none() {
            f.steady_mean = steady;
        }
        // Recovery is measured from the most recent fault; each new one
        // restarts the observation window.
        f.last_fault_at = Some(now);
        f.recovered_at = None;
        f.window_start = now;
        f.window_sum_ns = 0;
        f.window_count = 0;
        f.window_disrupted = false;
        match ev {
            FaultEvent::ServerCrash { server } => self.crash_server(now, ServerId(server)),
            FaultEvent::ServerRecover { server } => self.servers.recover(now, ServerId(server)),
            FaultEvent::ServerSlowdown { server, factor } => {
                self.servers.set_rate_factor(ServerId(server), factor);
            }
            FaultEvent::LinkFail { link } => self.fabric.fail_link(resolve_link(link)),
            FaultEvent::LinkDegrade { link, factor } => {
                self.fabric.degrade_link(resolve_link(link), factor);
            }
            FaultEvent::LinkRecover { link } => self.fabric.recover_link(resolve_link(link)),
            FaultEvent::PacketLossBurst {
                probability,
                duration,
            } => {
                f.loss_probability = probability;
                f.loss_until = now + duration;
            }
            op @ (FaultEvent::OperatorFail { .. } | FaultEvent::OperatorRecover { .. }) => {
                return Some(op);
            }
        }
        None
    }

    /// Fail-stops a server: queued and in-service copies are lost.
    fn crash_server(&mut self, now: SimTime, server: ServerId) {
        let dropped = self.servers.crash(now, server, &mut self.fabric);
        for req in dropped {
            self.drop_copy(req);
        }
    }

    /// Loses one in-flight copy of request `req`. The logical request
    /// survives (the timeout machinery decides its fate) unless it had
    /// already completed and this was its last outstanding copy.
    pub(crate) fn drop_copy(&mut self, req: u64) {
        if let Some(f) = &mut self.faults {
            f.copies_dropped += 1;
            f.disrupt();
        }
        if let Some(state) = self.requests.get_mut(req) {
            state.copies = state.copies.saturating_sub(1);
            if state.copies == 0 && state.completed {
                self.requests.remove(req);
            }
        }
    }

    /// Draws the packet-loss-burst coin for one delivery.
    pub(crate) fn packet_lost(&mut self, now: SimTime) -> bool {
        match &mut self.faults {
            Some(f) if now < f.loss_until => f.rng.chance(f.loss_probability),
            _ => false,
        }
    }

    /// [`Ev::RetryCheck`] mechanics: decides whether the request is done,
    /// must be abandoned (counted as a timeout), or should be re-steered.
    pub(crate) fn retry_decision(&mut self, req: ReqId, attempt: u32) -> RetryAction {
        let Some(f) = &mut self.faults else {
            return RetryAction::Done;
        };
        let Some(state) = self.requests.get(req.0) else {
            return RetryAction::Done;
        };
        if state.completed {
            return RetryAction::Done;
        }
        if !state.is_write && attempt < f.plan.retry.max_retries {
            f.retries += 1;
            f.disrupt();
            return RetryAction::Retry {
                replicas: self.ring.groups().replicas(state.rgid).to_vec(),
                primary: state.primary,
            };
        }
        // Writes abandon at their first timeout; reads after exhausting
        // their retries.
        f.timeouts += 1;
        f.disrupt();
        self.requests.remove(req.0);
        RetryAction::Abandon
    }

    /// Feeds one first-completion read latency to the recovery detector:
    /// recovered once a disruption-free window's mean re-enters the
    /// steady-state band.
    fn track_recovery(&mut self, now: SimTime, latency: SimDuration) {
        let Some(f) = &mut self.faults else {
            return;
        };
        if f.last_fault_at.is_none() || f.recovered_at.is_some() {
            return;
        }
        f.fault_hist.record(latency);
        f.window_sum_ns += u128::from(latency.as_nanos());
        f.window_count += 1;
        if now < f.window_start + f.plan.recovery_window {
            return;
        }
        let window_mean_ns = f.window_sum_ns / u128::from(f.window_count);
        let in_band = match f.steady_mean {
            Some(m) => {
                window_mean_ns <= u128::from(m.mul_f64(f.plan.recovery_tolerance).as_nanos())
            }
            // No pre-fault completions to define the band: any clean
            // window counts.
            None => true,
        };
        if !f.window_disrupted && in_band {
            f.recovered_at = Some(now);
        } else {
            f.window_start = now;
            f.window_sum_ns = 0;
            f.window_count = 0;
            f.window_disrupted = false;
        }
    }

    /// The plan's operator-failure detection delay.
    pub(crate) fn detection_delay(&self) -> SimDuration {
        self.faults
            .as_ref()
            .map_or(SimDuration::ZERO, |f| f.plan.detection_delay)
    }

    /// The wait before retry check `attempt + 1`.
    pub(crate) fn retry_backoff(&self, attempt: u32) -> SimDuration {
        self.faults
            .as_ref()
            .map_or(SimDuration::ZERO, |f| f.plan.backoff(attempt))
    }

    /// The run's availability outcome (`None` for fault-free runs).
    pub(crate) fn availability(&self) -> Option<AvailabilityStats> {
        let f = self.faults.as_ref()?;
        Some(AvailabilityStats {
            faults_injected: f.faults_injected,
            timeouts: f.timeouts,
            retries: f.retries,
            duplicate_drops: f.duplicate_drops,
            copies_dropped: f.copies_dropped,
            failed_window_p99: f.fault_hist.value_at_quantile(0.99),
            time_to_recover: match (f.recovered_at, f.last_fault_at) {
                (Some(r), Some(l)) => Some(r.saturating_since(l)),
                _ => None,
            },
        })
    }

    // ---- sampling and results -------------------------------------------

    /// Whether all issued requests have completed and no more will be
    /// issued.
    pub(crate) fn drained(&self) -> bool {
        let quota = self.replica.as_ref().map_or(self.cfg.requests, |r| r.quota);
        self.issued >= quota && self.requests.is_empty()
    }

    /// One sampler tick. `accel_busy_core_ns` and `n_accels` come from
    /// the policy (zero for client schemes), as does the DRS group count.
    pub(crate) fn sample(
        &mut self,
        now: SimTime,
        accel_busy_core_ns: u128,
        n_accels: usize,
        drs_groups: usize,
        queue: &mut EventQueue<Ev>,
    ) {
        let occupancy = self.servers.mean_occupancy();
        let outstanding = self.requests.len() as f64;
        let cores = u128::from(self.cfg.accelerator.cores);
        let Some(s) = self.sampler.as_mut() else {
            return;
        };
        let window_ns = u128::from(now.saturating_since(s.last_tick).as_nanos());
        let capacity = window_ns * cores * n_accels as u128;
        let util = if capacity == 0 {
            0.0
        } else {
            // busy counts scheduled work that may extend past `now`;
            // clamp the window to the physically possible maximum.
            (accel_busy_core_ns.saturating_sub(s.last_busy_core_ns) as f64 / capacity as f64)
                .min(1.0)
        };
        s.last_busy_core_ns = accel_busy_core_ns;
        s.last_tick = now;
        s.series.accel_util.push(now, util);
        s.series.server_occupancy.push(now, occupancy);
        s.series.outstanding.push(now, outstanding);
        s.series.drs_groups.push(now, drs_groups as f64);
        let interval = s.interval;
        if !self.drained() {
            queue.schedule_after(interval, Ev::Sample);
        }
    }

    /// Merges the scheme-independent accounting with the policy's control
    /// statistics into the final [`RunStats`].
    pub(crate) fn stats(&self, now: SimTime, events: u64, control: ControlStats) -> RunStats {
        // The `rw` block exists only for runs that opted into the
        // read/write extension (a cache, or a non-default consistency
        // mode); plain runs — including every pinned golden fixture —
        // keep emitting byte-identical JSON without it.
        let rw = if self.cfg.hot_cache.is_some()
            || self.cfg.write_consistency != WriteConsistency::All
        {
            let cache = control.cache.unwrap_or_default();
            Some(RwStats {
                writes_completed: self.writes_completed,
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                stale_reads: cache.stale_hits,
                cache_evictions: cache.evictions,
                cache_invalidations: cache.invalidations,
            })
        } else {
            None
        };
        RunStats {
            scheme: self.cfg.scheme,
            latency: self.hist.summary(),
            breakdown: self.breakdown.summarize(),
            issued: self.issued,
            completed: self.completed,
            duplicates: self.duplicates,
            rsnode_count: control.rsnode_census.iter().sum(),
            rsnode_census: control.rsnode_census,
            drs_groups: control.drs_groups,
            mean_accel_utilization: control.mean_accel_utilization,
            max_accel_utilization: control.max_accel_utilization,
            mean_selection_wait: control.mean_selection_wait,
            mean_server_utilization: self.servers.mean_utilization(now),
            replans: self.replans,
            writes_issued: self.writes_issued,
            write_latency: self.write_hist.summary(),
            overload_events: self.overload_events,
            sim_end: now,
            events,
            availability: self.availability(),
            rw,
            // The runner attaches the window accounting for multi-shard
            // runs; single-shard stats stay byte-identical without it.
            parallel: None,
        }
    }
}

/// Resolves a plan's symbolic link name to a concrete fat-tree link.
fn resolve_link(l: LinkRef) -> Link {
    match l {
        LinkRef::HostUplink { host } => Link::uplink(HostId(host)),
        LinkRef::SwitchLink { a, b } => Link::between(SwitchId(a), SwitchId(b)),
    }
}
