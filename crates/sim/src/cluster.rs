//! The simulated cluster: the thin facade tying the three layers
//! together and dispatching events to them.
//!
//! The simulation is layered (see DESIGN.md):
//!
//! * [`crate::fabric`] — packet movement over the fat-tree: ECMP path
//!   replay, link timing, and passive observation (device probe, hop
//!   log).
//! * [`crate::server`] — storage-server queueing and service, and the
//!   per-copy timeline token.
//! * [`crate::policy`] — the per-scheme decision points behind
//!   [`SchemePolicy`](crate::policy::SchemePolicy): request steering,
//!   replica-selection locus, feedback propagation, redundant requests,
//!   and the control plane.
//! * [`crate::state`] — the scheme-independent [`Core`]: workload,
//!   clients, request bookkeeping, and result accounting, owning the
//!   fabric and server layers.
//!
//! [`Cluster`] owns one [`Core`] and one boxed policy and implements
//! [`World`]: each event is dispatched either to the core (workload,
//! servers, replies, sampling) or to the policy (steering, selection,
//! duplicates, control plane), never both ad hoc.
//!
//! Timing model (all constants from §V-A): every network link traversal
//! costs `link_latency` (30 µs); switch forwarding itself is free, so a
//! packet's network time is `edges × link_latency` along its (possibly
//! RSNode-detoured) path. Replica selection adds the accelerator's
//! half-RTT + queueing + service + half-RTT. Response clones consume
//! accelerator capacity but add no latency to the response itself.
//! Servers are `Np`-slot FIFO queues with exponentially distributed,
//! bimodally fluctuating service times.

use netrs::Rsp;
use netrs_kvstore::{ServerId, ServerStatus};
use netrs_selection::Feedback;
use netrs_simcore::{
    DeviceProbe, EventQueue, Histogram, NoDeviceProbe, ParallelWorld, ShardId, ShardedWorld,
    SimDuration, SimRng, SimTime, World,
};
use netrs_topology::{FatTree, SwitchId};

use netrs_faults::FaultEvent;

use crate::config::SimConfig;
use crate::obs::{DeviceStatsReport, PlanEventRecord, SamplerSpec, TimeSeries};
use crate::policy::{NotInNetwork, SchemePolicy};
use crate::server::ServerToken;
use crate::state::{Core, GenOutcome, RetryAction};
use crate::stats::RunStats;

/// Identifies one logical client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(pub u64);

/// Simulation events.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// A workload generator fires.
    Generate {
        /// Generator index.
        gen: u32,
    },
    /// A rate-control-gated send retries (CliRS with CRC only).
    GatedSend {
        /// The waiting request.
        req: ReqId,
        /// Its chosen server.
        server: ServerId,
    },
    /// A request reaches its RSNode's switch and enters the accelerator.
    RsnodeArrive {
        /// The request.
        req: ReqId,
        /// The operator's switch.
        op: SwitchId,
    },
    /// The accelerator finishes a replica selection.
    Select {
        /// The request.
        req: ReqId,
        /// The operator's switch.
        op: SwitchId,
        /// When the request reached the RSNode (starts the selection
        /// phase of the latency breakdown).
        arrived: SimTime,
        /// How long the selection waited for a free accelerator core.
        waited: SimDuration,
    },
    /// A request copy arrives at a server.
    ServerArrive {
        /// The copy.
        token: ServerToken,
    },
    /// A server finishes one request copy.
    ServerDone {
        /// The server.
        server: ServerId,
        /// The finished copy.
        token: ServerToken,
    },
    /// An accelerator finishes processing a cloned response.
    SelectorUpdate {
        /// The operator's switch.
        op: SwitchId,
        /// The selector feedback derived from the clone.
        fb: Feedback,
    },
    /// A response reaches the client.
    ClientReceive {
        /// The copy.
        token: ServerToken,
        /// Piggybacked server status at response time.
        status: ServerStatus,
    },
    /// The CliRS-R95 duplicate timer fires.
    R95Check {
        /// The possibly still outstanding request.
        req: ReqId,
    },
    /// A server redraws its mean service time (every 50 ms).
    Fluctuate {
        /// The server.
        server: ServerId,
    },
    /// The controller checks operator utilization for overload
    /// (§III-C(ii)).
    OverloadCheck,
    /// The controller re-plans from monitor statistics.
    Replan,
    /// The observability sampler ticks (only scheduled when enabled).
    Sample,
    /// A scripted fault from the run's fault plan fires.
    Fault {
        /// Index into the plan's event timeline.
        idx: u32,
    },
    /// The client-side timeout machinery checks on a request (only
    /// scheduled when a fault plan is active).
    RetryCheck {
        /// The possibly still outstanding request.
        req: ReqId,
        /// How many checks have already fired for it.
        attempt: u32,
    },
    /// The controller detects an operator fail-stop (scheduled
    /// `detection_delay` after an `OperatorFail` fault).
    OperatorDetect {
        /// The dead operator's switch.
        sw: SwitchId,
    },
    /// A write's coherence message reaches an RSNode's hot-key cache
    /// (only scheduled when a cache is configured).
    CacheInvalidate {
        /// The operator's switch.
        op: SwitchId,
        /// The written key.
        key: u64,
        /// The key's newly committed version.
        version: u64,
    },
}

/// The complete simulated cluster (implements
/// [`netrs_simcore::World`]).
///
/// Generic over a [`DeviceProbe`]: with the default [`NoDeviceProbe`]
/// every device-telemetry hook compiles away and the run is exactly what
/// it was before the registry existed; with
/// [`DeviceStatsRegistry`](netrs_simcore::DeviceStatsRegistry) the
/// cluster accumulates per-device statistics (see
/// [`Cluster::take_device_report`]). Either way the probe only records —
/// it never touches event timing or randomness, so `RunStats` are
/// identical whichever probe is compiled in.
pub struct Cluster<D: DeviceProbe = NoDeviceProbe> {
    core: Core<D>,
    policy: Box<dyn SchemePolicy<D> + Send>,
}

impl Cluster {
    /// Builds the cluster for a validated configuration, without device
    /// telemetry (the [`NoDeviceProbe`] monomorphization).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`SimConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Cluster::with_device_probe(cfg, NoDeviceProbe)
    }
}

impl<D: DeviceProbe> Cluster<D> {
    /// Builds the cluster with an explicit device probe (see
    /// [`Cluster::new`] for the uninstrumented entry point).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`SimConfig::validate`]).
    #[must_use]
    pub fn with_device_probe(cfg: SimConfig, devices: D) -> Self {
        Cluster::with_shards(cfg, 1, devices)
    }

    /// Builds the cluster partitioned into `shards` event shards for the
    /// [`ShardedEngine`](netrs_simcore::ShardedEngine): pods map to
    /// shards round-robin and each shard's workload generators draw from
    /// their own RNG stream ([`SimRng::split`]). `shards` is clamped to
    /// `1..=pods`; at 1 shard the cluster is byte-identical to
    /// [`Cluster::with_device_probe`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`SimConfig::validate`]).
    #[must_use]
    pub fn with_shards(cfg: SimConfig, shards: u32, devices: D) -> Self {
        let cfg = cfg.finalize();
        if let Err(msg) = cfg.validate() {
            panic!("invalid simulation config: {msg}");
        }
        // Every random stream is a pure fork of the root: construction
        // and scheme order never perturb each other's draws.
        let root = SimRng::from_seed(cfg.seed);
        let core = Core::new(cfg, devices, &root, shards);
        let policy = crate::policy::build(&core, &root);
        Cluster { core, policy }
    }

    /// Primes the event queue: generator arrivals, server fluctuation
    /// timers, the scheme's control-plane timers, and the sampler tick.
    pub fn prime(&mut self, queue: &mut EventQueue<Ev>) {
        self.core.prime_workload(queue);
        self.core.prime_faults(queue);
        self.policy.prime(&mut self.core, queue);
        self.core.prime_sampler(queue);
    }

    // ---- observability ---------------------------------------------------

    /// Streams one JSONL [`TraceRecord`](crate::obs::TraceRecord) per
    /// received request copy to `w`. Tracing only writes; it never
    /// perturbs event timing.
    pub fn set_tracer(&mut self, w: Box<dyn std::io::Write + Send>) {
        self.core.set_tracer(w);
    }

    /// Attaches hop-by-hop route spans to every trace record (see
    /// [`HopSpan`](crate::obs::HopSpan)). Independent of the device
    /// probe; like it, this only records and never perturbs event timing.
    pub fn enable_hop_tracing(&mut self) {
        self.core.fabric.enable_hop_tracing();
    }

    /// Takes the accumulated per-device statistics as export-ready
    /// records, if a recording probe was compiled in. Call after the run
    /// drains; `now` is the utilization / mean-depth denominator.
    pub fn take_device_report(&mut self, now: SimTime) -> Option<DeviceStatsReport> {
        self.core.take_device_report(now)
    }

    /// Enables the virtual-time sampler (call before [`Cluster::prime`],
    /// which schedules its first tick).
    ///
    /// # Panics
    ///
    /// Panics if `spec.interval` is zero — a zero-interval sampler would
    /// re-arm at the current instant forever and sim time could never
    /// advance.
    pub fn enable_sampler(&mut self, spec: SamplerSpec) {
        self.core.enable_sampler(spec);
    }

    /// Takes the sampler's time series, if the sampler ran.
    pub fn take_timeseries(&mut self) -> Option<TimeSeries> {
        self.core.take_timeseries()
    }

    /// Flushes the trace sink, if any (call after the run drains).
    pub fn flush_tracer(&mut self) {
        self.core.flush_tracer();
    }

    // ---- replica mode (parallel execution) -------------------------------

    /// Switches this cluster into SPMD replica mode for `shard` (see
    /// [`Core::enable_replica`]); `quota` is the replica's share of the
    /// request budget and `lookahead_mult` widens the conservative
    /// window (`mult × link_latency`; values above 1 trade exactness for
    /// fewer barriers and are counted by `mailbox_late`).
    pub(crate) fn enable_replica(&mut self, shard: u32, quota: u64, lookahead_mult: u32) {
        self.core.enable_replica(shard, quota, lookahead_mult);
    }

    /// Whether the per-shard workload split can reproduce the global
    /// client distribution (see [`Core::replica_coverage_ok`]).
    pub(crate) fn replica_coverage_ok(&self) -> bool {
        self.core.replica_coverage_ok()
    }

    /// Buffers trace records for the post-run canonical-order merge
    /// instead of writing them inline.
    pub(crate) fn buffer_trace(&mut self) {
        self.core.buffer_trace();
    }

    /// The buffered trace lines (receive-time, line), in shard-local
    /// processing order.
    pub(crate) fn take_trace_buf(&mut self) -> Vec<(u64, String)> {
        self.core.take_trace_buf()
    }

    /// Folds another replica's results into this one (replica 0 absorbs
    /// shards 1..N after the parallel run drains).
    pub(crate) fn absorb_replica(&mut self, other: &mut Cluster<D>) {
        self.core.absorb_replica(&mut other.core);
    }

    /// Streams control-plane observability to `w`: one JSONL
    /// [`ControlRecord`](crate::obs::ControlRecord) per monitor snapshot
    /// window, controller decision, and DRS failure span. Like the
    /// tracer, the sink only writes; it never perturbs event timing,
    /// randomness or the controller's decisions.
    pub fn set_control(&mut self, w: Box<dyn std::io::Write + Send>) {
        self.core.set_control(w);
    }

    /// Closes still-open DRS failure spans at `now`, emits end-of-run
    /// per-operator cache records, and flushes the control sink, if any
    /// (call after the run drains).
    pub fn flush_control(&mut self, now: SimTime) {
        self.policy.audit_caches(&mut self.core, now);
        self.core.flush_control(now);
    }

    /// Whether all issued requests have completed and no more will be
    /// issued.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.core.drained()
    }

    // ---- control plane ---------------------------------------------------

    /// Injects a fail-stop fault into the operator at `sw` (§III-C(iii)):
    /// its traffic groups degrade to DRS and rules are redeployed.
    /// In-flight requests already heading there are served best-effort.
    ///
    /// # Errors
    ///
    /// Returns [`NotInNetwork`] for client-side schemes, which have no
    /// operators to fail.
    pub fn fail_operator(&mut self, sw: SwitchId) -> Result<Vec<u32>, NotInNetwork> {
        self.policy.fail_operator(sw)
    }

    // ---- results ---------------------------------------------------------

    /// Collects run statistics (call after the engine drains).
    #[must_use]
    pub fn stats(&self, now: SimTime, events: u64) -> RunStats {
        let control = self.policy.control_stats(now, &self.core.fabric.topo);
        self.core.stats(now, events, control)
    }

    /// The latency histogram accumulated so far (post-warmup requests).
    #[must_use]
    pub fn latency_histogram(&self) -> &Histogram {
        &self.core.hist
    }

    /// The installed Replica Selection Plan, if the scheme has one.
    #[must_use]
    pub fn current_plan(&self) -> Option<&Rsp> {
        self.policy.current_plan()
    }

    /// The simulated topology.
    #[must_use]
    pub fn topology(&self) -> &FatTree {
        &self.core.fabric.topo
    }

    /// Census of operators by tier currently holding selector state.
    #[must_use]
    pub fn operator_tiers(&self) -> [usize; 3] {
        self.policy.operator_tiers(&self.core.fabric.topo)
    }

    /// Requests issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.core.issued
    }

    /// Builds the decision-audit record for a fault-triggered plan edit
    /// (failure detection or recovery) against the now-installed plan.
    /// No solve runs for these: the controller edits the plan directly.
    fn fault_audit(
        &self,
        now: SimTime,
        trigger: &str,
        sw: SwitchId,
        groups: &[u32],
        recovery: bool,
    ) -> PlanEventRecord {
        let (rsnodes, drs_groups) = match self.policy.current_plan() {
            Some(p) => (p.rsnodes().len() as u32, p.drs.len() as u32),
            None => (0, 0),
        };
        let touched = groups.to_vec();
        let op_change = if touched.is_empty() {
            Vec::new()
        } else {
            vec![sw.0]
        };
        let (newly_assigned, unassigned, rsnodes_added, rsnodes_removed) = if recovery {
            (touched, Vec::new(), op_change, Vec::new())
        } else {
            (Vec::new(), touched, Vec::new(), op_change)
        };
        PlanEventRecord {
            t_ns: now.as_nanos(),
            trigger: trigger.into(),
            switch: Some(sw.0),
            solve: None,
            reassigned: Vec::new(),
            newly_assigned,
            unassigned,
            rsnodes_added,
            rsnodes_removed,
            rsnodes,
            drs_groups,
            rules_recompiled: self.core.fabric.topo.num_switches(),
        }
    }

    /// Logical requests completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.core.completed
    }
}

impl<D: DeviceProbe> World for Cluster<D> {
    type Event = Ev;

    fn event_kinds() -> &'static [&'static str] {
        crate::perf::kind_names()
    }

    fn event_kind(event: &Ev) -> u32 {
        event.kind_index()
    }

    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Generate { gen } => match self.core.generate(now, gen, queue) {
                GenOutcome::Read { req, replicas } => {
                    self.policy
                        .steer_read(&mut self.core, now, req, &replicas, queue);
                }
                GenOutcome::Write { req, key } => {
                    self.policy
                        .on_write_issued(&mut self.core, now, req, key, queue);
                }
                GenOutcome::None => {}
            },
            Ev::GatedSend { req, server } => {
                self.policy
                    .on_gated_send(&mut self.core, now, req, server, queue);
            }
            Ev::RsnodeArrive { req, op } => {
                self.policy
                    .on_rsnode_arrive(&mut self.core, now, req, op, queue);
            }
            Ev::Select {
                req,
                op,
                arrived,
                waited,
            } => {
                self.policy
                    .on_select(&mut self.core, now, req, op, arrived, waited, queue);
            }
            Ev::ServerArrive { token } => {
                if self.core.packet_lost(now) {
                    self.core.drop_copy(token.req.0);
                } else {
                    self.core.server_arrive(now, token, queue);
                }
            }
            Ev::ServerDone { server, mut token } => {
                if self.core.servers.absorb_ghost(server, &token) {
                    // The copy was in service when the server crashed.
                    self.core.drop_copy(token.req.0);
                } else if let Some(status) =
                    self.core.finish_service(now, server, &mut token, queue)
                {
                    // Chain writes propagate server → server; only the
                    // tail's completion produces a client reply.
                    if !self.core.forward_chain_write(now, &token, queue) {
                        self.policy
                            .route_reply(&mut self.core, now, token, status, queue);
                    }
                }
            }
            Ev::SelectorUpdate { op, fb } => self.policy.on_selector_update(now, op, fb),
            Ev::ClientReceive { token, status } => {
                if self.core.packet_lost(now) {
                    self.core.drop_copy(token.req.0);
                } else if let Some(info) = self.core.receive_reply(now, token, status) {
                    self.policy.on_reply(&mut self.core, now, &info);
                }
            }
            Ev::R95Check { req } => self.policy.on_r95_check(&mut self.core, now, req, queue),
            Ev::Fluctuate { server } => {
                self.core.servers.fluctuate(server);
                if !self.core.drained() {
                    queue.schedule_after(
                        self.core.cfg.server.fluctuation_interval,
                        Ev::Fluctuate { server },
                    );
                }
            }
            Ev::OverloadCheck => self.policy.on_overload_check(&mut self.core, now, queue),
            Ev::Replan => self.policy.on_replan(&mut self.core, now, queue),
            Ev::Sample => {
                let (accel_busy, n_accels) = self.policy.accel_busy();
                let drs = self.policy.drs_groups();
                self.core.sample(now, accel_busy, n_accels, drs, queue);
            }
            Ev::Fault { idx } => match self.core.inject_fault(now, idx) {
                Some(FaultEvent::OperatorFail { switch }) => {
                    let sw = SwitchId(switch);
                    if self.policy.operator_crashed(sw) {
                        if let Some(log) = self.core.control_log() {
                            log.operator_failed(now.as_nanos(), sw.0);
                        }
                        // The controller only learns of the fail-stop
                        // after the plan's detection delay; until then
                        // steered packets blackhole.
                        queue
                            .schedule_after(self.core.detection_delay(), Ev::OperatorDetect { sw });
                    }
                }
                Some(FaultEvent::OperatorRecover { switch }) => {
                    let sw = SwitchId(switch);
                    let restored = self.policy.recover_operator(&mut self.core, now, sw);
                    if self.core.control_log().is_some() {
                        let rec = self.fault_audit(now, "operator_recover", sw, &restored, true);
                        if let Some(log) = self.core.control_log() {
                            log.operator_recovered(rec);
                        }
                    }
                }
                _ => {} // server / link / loss faults applied by the core
            },
            Ev::RetryCheck { req, attempt } => match self.core.retry_decision(req, attempt) {
                RetryAction::Done | RetryAction::Abandon => {}
                RetryAction::Retry { replicas, primary } => {
                    self.policy
                        .on_request_timeout(&mut self.core, now, req, primary);
                    self.policy
                        .steer_read(&mut self.core, now, req, &replicas, queue);
                    queue.schedule_after(
                        self.core.retry_backoff(attempt + 1),
                        Ev::RetryCheck {
                            req,
                            attempt: attempt + 1,
                        },
                    );
                }
            },
            Ev::CacheInvalidate { op, key, version } => {
                if self.core.packet_lost(now) {
                    // The coherence message is lost: the cached entry
                    // stays behind, stale, until evicted or re-admitted.
                    self.core.fabric.devices.bump(
                        netrs_simcore::DeviceId::Switch(op.0),
                        netrs_simcore::DeviceCounter::Drop,
                        1,
                    );
                } else {
                    self.policy
                        .on_cache_invalidate(&mut self.core, now, op, key, version);
                }
            }
            Ev::OperatorDetect { sw } => {
                // For client schemes (a cross-applied plan) there is
                // nothing to reroute.
                if let Ok(affected) = self.policy.fail_operator(sw) {
                    if self.core.control_log().is_some() {
                        let rec = self.fault_audit(now, "operator_fail", sw, &affected, false);
                        if let Some(log) = self.core.control_log() {
                            log.operator_detected(rec, &affected);
                        }
                    }
                }
            }
        }
    }
}

impl<D: DeviceProbe> ShardedWorld for Cluster<D> {
    fn num_shards(&self) -> u32 {
        self.core.shards()
    }

    /// Events map to the pod of the device whose state their handler
    /// touches: generators round-robin by index, RSNode events to the
    /// operator switch's pod, server events to the server's pod, client
    /// timers and replies to the issuing client's pod, and cluster-wide
    /// control events (overload checks, re-plans, sampling, faults) to
    /// shard 0.
    fn shard_of(&self, event: &Ev) -> ShardId {
        ShardId(self.core.shard_of_event(event))
    }

    /// One link traversal: every pod-crossing hop pays at least one link
    /// of latency, so a cross-shard event is never closer than this.
    fn lookahead(&self) -> SimDuration {
        self.core.cfg.link_latency
    }
}

/// Replica-mode parallel execution: each [`Cluster`] instance is one
/// shard's SPMD replica (see [`Core::enable_replica`]); dispatch is the
/// same [`World`] impl, routing the same home-shard map as the
/// sequential windowed engine (plus token-based reply routing).
impl<D: DeviceProbe + Send> ParallelWorld for Cluster<D> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        <Self as World>::handle(self, now, event, queue);
    }

    fn shard_of(&self, event: &Ev) -> ShardId {
        ShardId(self.core.shard_of_event(event))
    }

    fn lookahead(&self) -> SimDuration {
        self.core.replica_lookahead()
    }
}
