//! The full cluster simulation: clients, workload generators, the
//! fat-tree network with NetRS rules, accelerators, monitors and storage
//! servers, driven by the discrete-event engine.
//!
//! Timing model (all constants from §V-A): every network link traversal
//! costs `link_latency` (30 µs); switch forwarding itself is free, so a
//! packet's network time is `edges × link_latency` along its (possibly
//! RSNode-detoured) path. Replica selection adds the accelerator's
//! half-RTT + queueing + service + half-RTT. Response clones consume
//! accelerator capacity but add no latency to the response itself.
//! Servers are `Np`-slot FIFO queues with exponentially distributed,
//! bimodally fluctuating service times.

use std::collections::HashMap;

use netrs::{NetRsController, Rsp, TrafficGroups, TrafficMatrix};
use netrs_kvstore::{Arrival, Ring, Server, ServerId, ServerStatus};
use netrs_netdev::{Accelerator, IngressAction, Monitor, NetRsRules, PacketMeta};
use netrs_selection::{CubicRateController, Feedback, ReplicaSelector};
use netrs_simcore::{
    DeviceCounter, DeviceId, DeviceProbe, EventQueue, Histogram, NoDeviceProbe, NodeId,
    SimDuration, SimRng, SimTime, World, Zipf,
};
use netrs_topology::{FatTree, HostId, SwitchId};
use netrs_wire::{MagicField, RsnodeId, REQUEST_HEADER_LEN, RESPONSE_FIXED_LEN};

use crate::config::{PlanSource, Scheme, SimConfig};
use crate::obs::{DeviceRecord, DeviceStatsReport, HopSpan, SamplerSpec, TimeSeries, TraceRecord};
use crate::stats::{LatencyBreakdown, RunStats};

/// Simulated size of one request packet on the wire (the NetRS request
/// header; payloads are not modelled).
const REQ_BYTES: u64 = REQUEST_HEADER_LEN as u64;
/// Simulated size of one response packet (fixed NetRS response fields).
const RESP_BYTES: u64 = RESPONSE_FIXED_LEN as u64;

/// Where observed hop spans accumulate while a copy is in flight.
#[derive(Debug, Clone, Copy)]
enum HopSink {
    /// Steer-phase hops of an in-network request whose target server is
    /// not known yet; sealed into a copy log at selection time.
    Pending(u64),
    /// Hops of a concrete copy `(request, server)`.
    Copy(u64, u32),
}

/// Identifies one logical client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(pub u64);

/// Everything a request copy carries through the network and the server
/// queue, including its observability timeline: the consecutive event
/// timestamps that decompose end-to-end latency into exact phases
/// (steer → selection → to-server → server queue → service → reply).
#[derive(Debug, Clone, Copy)]
pub struct ServerToken {
    req: ReqId,
    server: ServerId,
    /// When this copy left its last sender (client or selector).
    copy_sent_at: SimTime,
    /// The RSNode the copy passed, if any, and when it left it.
    rsnode: Option<SwitchId>,
    rsnode_sent_at: SimTime,
    /// When the logical request was issued at the client.
    issued_at: SimTime,
    /// When the copy reached its selection point (the RSNode for
    /// in-network schemes; `issued_at` for client-side selection).
    steered_at: SimTime,
    /// Accelerator queue wait (zero for client schemes).
    selection_wait: SimDuration,
    /// When the copy arrived at the server.
    server_arrived_at: SimTime,
    /// When the server started serving it (after any queueing).
    service_started_at: SimTime,
    /// When the server finished serving it.
    served_at: SimTime,
}

impl ServerToken {
    /// A token whose timeline starts at `issued_at` and whose selection
    /// interval is `[steered_at, copy_sent_at]`; the server-side
    /// timestamps are stamped as the copy progresses.
    fn new(
        req: ReqId,
        server: ServerId,
        issued_at: SimTime,
        steered_at: SimTime,
        selection_wait: SimDuration,
        copy_sent_at: SimTime,
        rsnode: Option<SwitchId>,
    ) -> Self {
        ServerToken {
            req,
            server,
            copy_sent_at,
            rsnode,
            rsnode_sent_at: copy_sent_at,
            issued_at,
            steered_at,
            selection_wait,
            server_arrived_at: copy_sent_at,
            service_started_at: copy_sent_at,
            served_at: copy_sent_at,
        }
    }
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// A workload generator fires.
    Generate {
        /// Generator index.
        gen: u32,
    },
    /// A rate-control-gated send retries (CliRS with CRC only).
    GatedSend {
        /// The waiting request.
        req: ReqId,
        /// Its chosen server.
        server: ServerId,
    },
    /// A request reaches its RSNode's switch and enters the accelerator.
    RsnodeArrive {
        /// The request.
        req: ReqId,
        /// The operator's switch.
        op: SwitchId,
    },
    /// The accelerator finishes a replica selection.
    Select {
        /// The request.
        req: ReqId,
        /// The operator's switch.
        op: SwitchId,
        /// When the request reached the RSNode (starts the selection
        /// phase of the latency breakdown).
        arrived: SimTime,
        /// How long the selection waited for a free accelerator core.
        waited: SimDuration,
    },
    /// A request copy arrives at a server.
    ServerArrive {
        /// The copy.
        token: ServerToken,
    },
    /// A server finishes one request copy.
    ServerDone {
        /// The server.
        server: ServerId,
        /// The finished copy.
        token: ServerToken,
    },
    /// An accelerator finishes processing a cloned response.
    SelectorUpdate {
        /// The operator's switch.
        op: SwitchId,
        /// The selector feedback derived from the clone.
        fb: Feedback,
    },
    /// A response reaches the client.
    ClientReceive {
        /// The copy.
        token: ServerToken,
        /// Piggybacked server status at response time.
        status: ServerStatus,
    },
    /// The CliRS-R95 duplicate timer fires.
    R95Check {
        /// The possibly still outstanding request.
        req: ReqId,
    },
    /// A server redraws its mean service time (every 50 ms).
    Fluctuate {
        /// The server.
        server: ServerId,
    },
    /// The controller checks operator utilization for overload
    /// (§III-C(ii)).
    OverloadCheck,
    /// The controller re-plans from monitor statistics.
    Replan,
    /// The observability sampler ticks (only scheduled when enabled).
    Sample,
}

#[derive(Debug)]
struct RequestState {
    client: u32,
    rgid: u32,
    issue_idx: u64,
    sent_at: SimTime,
    backup: ServerId,
    primary: Option<ServerId>,
    completed: bool,
    copies: u8,
    dup_sent: bool,
    is_write: bool,
}

struct ClientState {
    host: HostId,
    selector: Option<Box<dyn ReplicaSelector + Send>>,
    rate: Option<CubicRateController>,
    hist: Histogram,
    rng: SimRng,
}

struct Operator {
    selector: Box<dyn ReplicaSelector + Send>,
    accel: Accelerator,
}

/// Virtual-time sampler state (present only when enabled).
struct SamplerState {
    interval: SimDuration,
    series: TimeSeries,
    /// Aggregate accelerator busy core-ns at the previous tick, for
    /// windowed utilization.
    last_busy_core_ns: u128,
    last_tick: SimTime,
}

/// Per-phase histograms feeding [`LatencyBreakdown`]. Always on: four
/// `record_nanos` calls per completed read are noise next to the event
/// loop, and `RunStats` must carry a populated breakdown for every run.
struct BreakdownHists {
    network: Histogram,
    selection: Histogram,
    server_queue: Histogram,
    service: Histogram,
}

impl BreakdownHists {
    fn new() -> Self {
        BreakdownHists {
            network: Histogram::new(),
            selection: Histogram::new(),
            server_queue: Histogram::new(),
            service: Histogram::new(),
        }
    }

    fn summarize(&self) -> LatencyBreakdown {
        LatencyBreakdown {
            count: self.network.count(),
            network: self.network.summary(),
            selection: self.selection.summary(),
            server_queue: self.server_queue.summary(),
            service: self.service.summary(),
        }
    }
}

/// The complete simulated cluster (implements
/// [`netrs_simcore::World`]).
///
/// Generic over a [`DeviceProbe`]: with the default [`NoDeviceProbe`]
/// every device-telemetry hook compiles away and the run is exactly what
/// it was before the registry existed; with
/// [`DeviceStatsRegistry`](netrs_simcore::DeviceStatsRegistry) the
/// cluster accumulates per-device statistics (see
/// [`Cluster::take_device_report`]). Either way the probe only records —
/// it never touches event timing or randomness, so `RunStats` are
/// identical whichever probe is compiled in.
pub struct Cluster<D: DeviceProbe = NoDeviceProbe> {
    cfg: SimConfig,
    topo: FatTree,
    ring: Ring,
    zipf: Zipf,
    server_hosts: Vec<HostId>,
    clients: Vec<ClientState>,
    servers: Vec<Server<ServerToken>>,
    groups: TrafficGroups,
    controller: Option<NetRsController>,
    rules: HashMap<SwitchId, NetRsRules>,
    operators: HashMap<SwitchId, Operator>,
    monitors: HashMap<SwitchId, Monitor>,
    requests: HashMap<u64, RequestState>,
    issued: u64,
    completed: u64,
    duplicates: u64,
    drained_replans: u64,
    warmup_cutoff: u64,
    hist: Histogram,
    write_hist: Histogram,
    writes_issued: u64,
    overload_events: u64,
    last_accel_busy: HashMap<SwitchId, u128>,
    workload_rng: SimRng,
    gen_interarrival: SimDuration,
    top_clients: u32,
    retired_operators: Vec<Operator>,
    breakdown: BreakdownHists,
    tracer: Option<Box<dyn std::io::Write + Send>>,
    sampler: Option<SamplerState>,
    devices: D,
    /// Per-copy hop spans keyed by `(request, server)`, drained into
    /// [`TraceRecord::hops`] when the copy's response arrives. `None`
    /// unless hop tracing is enabled.
    hop_log: Option<HashMap<(u64, u32), Vec<HopSpan>>>,
    /// Steer-phase hops of in-network requests whose server is not yet
    /// selected, keyed by request.
    pending_hops: HashMap<u64, Vec<HopSpan>>,
}

impl Cluster {
    /// Builds the cluster for a validated configuration, without device
    /// telemetry (the [`NoDeviceProbe`] monomorphization).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`SimConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Cluster::with_device_probe(cfg, NoDeviceProbe)
    }
}

impl<D: DeviceProbe> Cluster<D> {
    /// Builds the cluster with an explicit device probe (see
    /// [`Cluster::new`] for the uninstrumented entry point).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`SimConfig::validate`]).
    #[must_use]
    pub fn with_device_probe(cfg: SimConfig, devices: D) -> Self {
        let cfg = cfg.finalize();
        if let Err(msg) = cfg.validate() {
            panic!("invalid simulation config: {msg}");
        }
        let root = SimRng::from_seed(cfg.seed);
        let topo = FatTree::new(cfg.arity).expect("validated arity");

        // Random non-overlapping placement of servers and clients
        // ("clients and servers are randomly deployed across end-hosts,
        // and each host only has one role", §V-A).
        let mut placement_rng = root.fork(0);
        let picks = placement_rng.sample_indices(
            topo.num_hosts() as usize,
            (cfg.servers + cfg.clients) as usize,
        );
        let mut picks: Vec<HostId> = picks.into_iter().map(|h| HostId(h as u32)).collect();
        placement_rng.shuffle(&mut picks);
        let server_hosts: Vec<HostId> = picks[..cfg.servers as usize].to_vec();
        let client_hosts: Vec<HostId> = picks[cfg.servers as usize..].to_vec();

        let ring = Ring::new(
            cfg.servers,
            cfg.vnodes,
            cfg.replication,
            root.fork(1).next_u64(),
        )
        .expect("validated ring parameters");
        let zipf = Zipf::new(cfg.keys, cfg.zipf);

        let servers: Vec<Server<ServerToken>> = (0..cfg.servers)
            .map(|i| {
                Server::new(
                    ServerId(i),
                    cfg.server.clone(),
                    root.fork(20_000 + u64::from(i)),
                )
            })
            .collect();

        let groups = TrafficGroups::build(&topo, &client_hosts, cfg.granularity);
        let top_clients = (cfg.clients / 5).max(1);

        let mut cluster = Cluster {
            warmup_cutoff: (cfg.requests as f64 * cfg.warmup_fraction) as u64,
            gen_interarrival: SimDuration::from_secs_f64(
                f64::from(cfg.generators) / cfg.arrival_rate(),
            ),
            workload_rng: root.fork(2),
            topo,
            ring,
            zipf,
            server_hosts,
            clients: Vec::new(),
            servers,
            groups,
            controller: None,
            rules: HashMap::new(),
            operators: HashMap::new(),
            monitors: HashMap::new(),
            requests: HashMap::new(),
            issued: 0,
            completed: 0,
            duplicates: 0,
            drained_replans: 0,
            hist: Histogram::new(),
            write_hist: Histogram::new(),
            writes_issued: 0,
            overload_events: 0,
            last_accel_busy: HashMap::new(),
            top_clients,
            retired_operators: Vec::new(),
            breakdown: BreakdownHists::new(),
            tracer: None,
            sampler: None,
            devices,
            hop_log: None,
            pending_hops: HashMap::new(),
            cfg,
        };
        let built: Vec<ClientState> = client_hosts
            .iter()
            .enumerate()
            .map(|(i, &host)| cluster.build_client(i as u32, host, &root))
            .collect();
        cluster.clients = built;
        cluster.setup_scheme(&root);
        cluster
    }

    fn build_client(&self, idx: u32, host: HostId, root: &SimRng) -> ClientState {
        let selector = if self.cfg.scheme.is_in_network() {
            None
        } else {
            let mut c3 = self.cfg.c3;
            c3.concurrency = f64::from(self.cfg.clients).max(1.0);
            Some(
                self.cfg
                    .selector
                    .build(c3, root.fork(10_000 + u64::from(idx))),
            )
        };
        ClientState {
            host,
            selector,
            rate: (!self.cfg.scheme.is_in_network())
                .then(|| self.cfg.rate_control.map(CubicRateController::new))
                .flatten(),
            hist: Histogram::new(),
            rng: root.fork(40_000 + u64::from(idx)),
        }
    }

    /// Expected request rate of each client (requests/second), honouring
    /// the demand skew.
    fn client_rates(&self) -> Vec<(HostId, f64)> {
        let a = self.cfg.arrival_rate();
        let n = self.cfg.clients;
        let top = self.top_clients;
        self.clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let rate = match self.cfg.demand_skew {
                    None => a / f64::from(n),
                    Some(s) => {
                        if (i as u32) < top {
                            a * s / f64::from(top)
                        } else {
                            a * (1.0 - s) / f64::from(n - top)
                        }
                    }
                };
                (c.host, rate)
            })
            .collect()
    }

    fn setup_scheme(&mut self, root: &SimRng) {
        if !self.cfg.scheme.is_in_network() {
            return;
        }
        let mut controller = NetRsController::new(
            self.topo.clone(),
            netrs::ControllerConfig {
                constraints: self.cfg.plan.clone(),
            },
        );
        let rsp = match (self.cfg.scheme, self.cfg.plan_source) {
            (Scheme::NetRsToR, _) | (Scheme::NetRsIlp, PlanSource::Monitored { .. }) => {
                // NetRS-ToR, or the monitored bootstrap before the first
                // measurement window completes.
                Rsp::tor_plan(&self.groups)
            }
            (Scheme::NetRsIlp, PlanSource::Oracle) => {
                let traffic = TrafficMatrix::oracle(
                    &self.topo,
                    &self.groups,
                    &self.client_rates(),
                    &self.server_hosts,
                );
                let solver = self.cfg.plan_solver;
                controller.plan(&self.groups, &traffic, solver).clone()
            }
            _ => unreachable!("client schemes handled above"),
        };
        controller.install(rsp);
        self.rules = controller.deploy(&self.groups);
        self.controller = Some(controller);
        self.rebuild_operators(root.clone());

        // Monitors sit on every ToR with attached clients.
        for info in self.groups.iter() {
            let controller = self.controller.as_ref().expect("just set");
            self.monitors
                .entry(info.tor)
                .or_insert_with(|| Monitor::new(controller.marker_of_rack(info.tor.0)));
        }
    }

    /// (Re)creates operator state for the current plan: new RSNodes start
    /// with fresh selectors (the paper's §II transient), retained RSNodes
    /// keep their local information.
    fn rebuild_operators(&mut self, root: SimRng) {
        let rsnodes = self
            .controller
            .as_ref()
            .expect("in-network scheme")
            .current_plan()
            .rsnodes();
        let n = rsnodes.len().max(1) as f64;
        let mut next = HashMap::new();
        for sw in rsnodes {
            let op = self.operators.remove(&sw).unwrap_or_else(|| {
                let mut c3 = self.cfg.c3;
                c3.concurrency = n;
                Operator {
                    selector: self
                        .cfg
                        .selector
                        .build(c3, root.fork(30_000 + u64::from(sw.0))),
                    accel: Accelerator::new(self.cfg.accelerator),
                }
            });
            next.insert(sw, op);
        }
        // Keep retired accelerators so end-of-run statistics still see
        // the work they performed. Drain in switch order: the retirement
        // order fixes the float summation order in `stats`, and HashMap
        // iteration order varies between runs.
        let mut retired: Vec<(SwitchId, Operator)> = self.operators.drain().collect();
        retired.sort_unstable_by_key(|&(sw, _)| sw);
        self.retired_operators
            .extend(retired.into_iter().map(|(_, op)| op));
        self.operators = next;
    }

    /// Primes the event queue: generator arrivals, server fluctuation
    /// timers and (for the monitored plan source) the re-plan timer.
    pub fn prime(&mut self, queue: &mut EventQueue<Ev>) {
        for gen in 0..self.cfg.generators {
            let gap = self.workload_rng.exp_duration(self.gen_interarrival);
            queue.schedule_at(SimTime::ZERO + gap, Ev::Generate { gen });
        }
        for s in 0..self.cfg.servers {
            queue.schedule_after(
                self.cfg.server.fluctuation_interval,
                Ev::Fluctuate {
                    server: ServerId(s),
                },
            );
        }
        if let (true, PlanSource::Monitored { interval }) =
            (self.cfg.scheme == Scheme::NetRsIlp, self.cfg.plan_source)
        {
            queue.schedule_after(interval, Ev::Replan);
        }
        if let (true, Some(policy)) = (self.cfg.scheme.is_in_network(), self.cfg.overload) {
            queue.schedule_after(policy.interval, Ev::OverloadCheck);
        }
        if let Some(s) = &self.sampler {
            queue.schedule_after(s.interval, Ev::Sample);
        }
    }

    // ---- observability ---------------------------------------------------

    /// Streams one JSONL [`TraceRecord`] per received request copy to
    /// `w`. Tracing only writes; it never perturbs event timing.
    pub fn set_tracer(&mut self, w: Box<dyn std::io::Write + Send>) {
        self.tracer = Some(w);
    }

    /// Attaches hop-by-hop route spans to every trace record (see
    /// [`HopSpan`]). Independent of the device probe; like it, this only
    /// records and never perturbs event timing.
    pub fn enable_hop_tracing(&mut self) {
        self.hop_log = Some(HashMap::new());
    }

    /// Whether packet paths need to be walked for observation. With the
    /// default probe and hop tracing off this is `false` and every
    /// observation site reduces to an untaken branch.
    fn observing(&self) -> bool {
        D::ENABLED || self.hop_log.is_some()
    }

    fn push_hops(&mut self, sink: HopSink, hops: Vec<HopSpan>) {
        let Some(log) = self.hop_log.as_mut() else {
            return;
        };
        match sink {
            HopSink::Pending(req) => self.pending_hops.entry(req).or_default().extend(hops),
            HopSink::Copy(req, server) => log.entry((req, server)).or_default().extend(hops),
        }
    }

    /// Records the copy occupying `dev` over `[arrive, depart]` (client
    /// hold, accelerator selection, server queue + service).
    fn push_residency_hop(
        &mut self,
        sink: HopSink,
        dev: DeviceId,
        arrive: SimTime,
        depart: SimTime,
    ) {
        if self.hop_log.is_none() {
            return;
        }
        let hop = HopSpan {
            dev: dev.to_string(),
            arrive_ns: arrive.as_nanos(),
            depart_ns: depart.as_nanos(),
        };
        self.push_hops(sink, vec![hop]);
    }

    /// Walks one network segment (consecutive `nodes`, one link latency
    /// per edge, free switch forwarding) starting at `t0`: counts a
    /// tier-`tier` packet of `bytes` bytes at every link and switch it
    /// crosses, and logs the covering hop spans.
    fn observe_nodes(
        &mut self,
        t0: SimTime,
        nodes: &[NodeId],
        tier: usize,
        sink: HopSink,
        bytes: u64,
    ) {
        let link_latency = self.cfg.link_latency;
        let logging = self.hop_log.is_some();
        let mut hops: Vec<HopSpan> = Vec::new();
        let mut t = t0;
        for pair in nodes.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            self.devices.packet(DeviceId::Link(a, b), tier, bytes);
            // A packet occupies the (serialized) link for one traversal.
            self.devices.busy(DeviceId::Link(a, b), link_latency);
            let arrived = t + link_latency;
            if logging {
                hops.push(HopSpan {
                    dev: DeviceId::Link(a, b).to_string(),
                    arrive_ns: t.as_nanos(),
                    depart_ns: arrived.as_nanos(),
                });
            }
            t = arrived;
            if let NodeId::Switch(s) = b {
                self.devices.packet(DeviceId::Switch(s), tier, bytes);
                if logging {
                    // Forwarding is free in the timing model: zero-width.
                    hops.push(HopSpan {
                        dev: DeviceId::Switch(s).to_string(),
                        arrive_ns: t.as_nanos(),
                        depart_ns: t.as_nanos(),
                    });
                }
            }
        }
        if logging {
            self.push_hops(sink, hops);
        }
    }

    /// Observes a host-to-host packet leaving at `t0` along the same
    /// ECMP path the timing helper charged for.
    fn observe_host_to_host(
        &mut self,
        t0: SimTime,
        a: HostId,
        b: HostId,
        hash: u64,
        sink: HopSink,
        bytes: u64,
    ) {
        let p = self.topo.path(a, b, hash);
        let tier = self.topo.path_tier(&p).id() as usize;
        let mut nodes = Vec::with_capacity(p.len() + 2);
        nodes.push(NodeId::Host(a.0));
        nodes.extend(p.iter().map(|s| NodeId::Switch(s.0)));
        nodes.push(NodeId::Host(b.0));
        self.observe_nodes(t0, &nodes, tier, sink, bytes);
    }

    /// Observes a host-to-switch packet along `path` (which includes the
    /// destination switch, matching
    /// [`FatTree::path_host_to_switch`]).
    fn observe_host_to_switch(
        &mut self,
        t0: SimTime,
        a: HostId,
        path: &[SwitchId],
        sink: HopSink,
        bytes: u64,
    ) {
        let tier = self.topo.path_tier(path).id() as usize;
        let mut nodes = Vec::with_capacity(path.len() + 1);
        nodes.push(NodeId::Host(a.0));
        nodes.extend(path.iter().map(|s| NodeId::Switch(s.0)));
        self.observe_nodes(t0, &nodes, tier, sink, bytes);
    }

    /// Observes a switch-to-host packet (the starting switch is part of
    /// the segment for tier classification but was already counted on
    /// arrival there).
    fn observe_switch_to_host(
        &mut self,
        t0: SimTime,
        sw: SwitchId,
        b: HostId,
        hash: u64,
        sink: HopSink,
        bytes: u64,
    ) {
        let p = self.topo.path_switch_to_host(sw, b, hash);
        let tier = self.topo.path_tier(&p).min(self.topo.tier(sw)).id() as usize;
        let mut nodes = Vec::with_capacity(p.len() + 2);
        nodes.push(NodeId::Switch(sw.0));
        nodes.extend(p.iter().map(|s| NodeId::Switch(s.0)));
        nodes.push(NodeId::Host(b.0));
        self.observe_nodes(t0, &nodes, tier, sink, bytes);
    }

    /// Closes the steer phase of an in-network request: appends the
    /// residency at `dev` (the accelerator, or the retired operator's
    /// switch) ending at `until`, and moves the request's pending hops
    /// into the copy log under `(req, server)`.
    fn seal_steer_hops(&mut self, req: u64, server: u32, dev: DeviceId, until: SimTime) {
        if self.hop_log.is_none() {
            return;
        }
        let mut hops = self.pending_hops.remove(&req).unwrap_or_default();
        let arrive_ns = hops.last().map_or(until.as_nanos(), |h| h.depart_ns);
        hops.push(HopSpan {
            dev: dev.to_string(),
            arrive_ns,
            depart_ns: until.as_nanos(),
        });
        self.push_hops(HopSink::Copy(req, server), hops);
    }

    /// Takes the accumulated per-device statistics as export-ready
    /// records, if a recording probe was compiled in. Call after the run
    /// drains; `now` is the utilization / mean-depth denominator.
    pub fn take_device_report(&mut self, now: SimTime) -> Option<DeviceStatsReport> {
        let registry = std::mem::take(&mut self.devices).into_registry()?;
        let node_tier = |n: NodeId| match n {
            NodeId::Host(_) => 3,
            NodeId::Switch(s) => self.topo.tier(SwitchId(s)).id(),
        };
        let records = registry
            .iter()
            .map(|(&dev, s)| {
                let (kind, tier, capacity) = match dev {
                    DeviceId::Switch(s) => ("switch", self.topo.tier(SwitchId(s)).id(), 1),
                    DeviceId::Accelerator(s) => (
                        "accel",
                        self.topo.tier(SwitchId(s)).id(),
                        self.cfg.accelerator.cores,
                    ),
                    DeviceId::Server(_) => ("server", 3, self.cfg.server.slots),
                    DeviceId::Client(_) => ("client", 3, 1),
                    DeviceId::Link(a, b) => ("link", node_tier(a).min(node_tier(b)), 1),
                };
                DeviceRecord {
                    dev: dev.to_string(),
                    kind: kind.to_string(),
                    tier,
                    packets: s.packets,
                    bytes: s.bytes,
                    ops: s.ops,
                    selections: s.selections,
                    mean_selection_wait_ns: s.mean_selection_wait().as_nanos(),
                    clone_updates: s.clone_updates,
                    busy_ns: u64::try_from(s.busy_ns).unwrap_or(u64::MAX),
                    utilization: s.utilization(now, capacity),
                    mean_queue_depth: s.mean_queue_depth(now),
                    max_queue_depth: s.max_depth,
                    drops: s.drops,
                    clamps: s.clamps,
                }
            })
            .collect();
        Some(DeviceStatsReport {
            records,
            sim_end_ns: now.as_nanos(),
        })
    }

    /// Enables the virtual-time sampler (call before [`Cluster::prime`],
    /// which schedules its first tick).
    ///
    /// # Panics
    ///
    /// Panics if `spec.interval` is zero — a zero-interval sampler would
    /// re-arm at the current instant forever and sim time could never
    /// advance.
    pub fn enable_sampler(&mut self, spec: SamplerSpec) {
        assert!(
            spec.interval > SimDuration::ZERO,
            "sampler interval must be positive"
        );
        self.sampler = Some(SamplerState {
            interval: spec.interval,
            series: TimeSeries::new(spec.capacity),
            last_busy_core_ns: 0,
            last_tick: SimTime::ZERO,
        });
    }

    /// Takes the sampler's time series, if the sampler ran.
    pub fn take_timeseries(&mut self) -> Option<TimeSeries> {
        self.sampler.take().map(|s| s.series)
    }

    /// Flushes the trace sink, if any (call after the run drains).
    pub fn flush_tracer(&mut self) {
        use std::io::Write as _;
        if let Some(w) = self.tracer.as_mut() {
            let _ = w.flush();
        }
    }

    /// One sampler tick: windowed accelerator utilization, instantaneous
    /// server occupancy, outstanding requests, and the DRS group count.
    fn on_sample(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        let busy: u128 = self
            .operators
            .values()
            .chain(self.retired_operators.iter())
            .map(|op| op.accel.stats().busy_core_ns)
            .sum();
        let n_accels = (self.operators.len() + self.retired_operators.len()) as u128;
        let occupancy = self.servers.iter().map(|s| s.slot_occupancy()).sum::<f64>()
            / self.servers.len() as f64;
        let outstanding = self.requests.len() as f64;
        let drs = self
            .controller
            .as_ref()
            .map_or(0, |c| c.current_plan().drs.len()) as f64;
        let cores = u128::from(self.cfg.accelerator.cores);
        let Some(s) = self.sampler.as_mut() else {
            return;
        };
        let window_ns = u128::from(now.saturating_since(s.last_tick).as_nanos());
        let capacity = window_ns * cores * n_accels;
        let util = if capacity == 0 {
            0.0
        } else {
            // busy counts scheduled work that may extend past `now`;
            // clamp the window to the physically possible maximum.
            (busy.saturating_sub(s.last_busy_core_ns) as f64 / capacity as f64).min(1.0)
        };
        s.last_busy_core_ns = busy;
        s.last_tick = now;
        s.series.accel_util.push(now, util);
        s.series.server_occupancy.push(now, occupancy);
        s.series.outstanding.push(now, outstanding);
        s.series.drs_groups.push(now, drs);
        let interval = s.interval;
        if !self.drained() {
            queue.schedule_after(interval, Ev::Sample);
        }
    }

    /// Whether all issued requests have completed and no more will be
    /// issued.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.issued >= self.cfg.requests && self.requests.is_empty()
    }

    // ---- timing helpers -------------------------------------------------

    fn link(&self, edges: u32) -> SimDuration {
        self.cfg.link_latency * u64::from(edges)
    }

    fn host_to_host(&self, a: HostId, b: HostId, hash: u64) -> SimDuration {
        let p = self.topo.path(a, b, hash);
        self.link(p.len() as u32 + 1)
    }

    fn host_to_switch(&self, a: HostId, sw: SwitchId, hash: u64) -> SimDuration {
        let p = self.topo.path_host_to_switch(a, sw, hash);
        self.link(p.len() as u32)
    }

    fn switch_to_host(&self, sw: SwitchId, b: HostId, hash: u64) -> SimDuration {
        let p = self.topo.path_switch_to_host(sw, b, hash);
        self.link(p.len() as u32 + 1)
    }

    fn flow_hash(&self, req: ReqId, salt: u64) -> u64 {
        netrs_kvstore::hash64(req.0 ^ salt.wrapping_mul(0x9E37_79B9))
    }

    // ---- workload -------------------------------------------------------

    fn pick_client(&mut self) -> u32 {
        match self.cfg.demand_skew {
            None => self.workload_rng.below(u64::from(self.cfg.clients)) as u32,
            Some(s) => {
                if self.workload_rng.chance(s) {
                    self.workload_rng.below(u64::from(self.top_clients)) as u32
                } else {
                    let rest = u64::from(self.cfg.clients - self.top_clients);
                    self.top_clients + self.workload_rng.below(rest) as u32
                }
            }
        }
    }

    fn on_generate(&mut self, now: SimTime, gen: u32, queue: &mut EventQueue<Ev>) {
        if self.issued >= self.cfg.requests {
            return; // workload exhausted: let the generator die out
        }
        let gap = self.workload_rng.exp_duration(self.gen_interarrival);
        queue.schedule_after(gap, Ev::Generate { gen });

        let client_idx = self.pick_client();
        let key = self.zipf.sample(&mut self.workload_rng);
        let rgid = self.ring.group_of_key(key);
        let replicas = self.ring.groups().replicas(rgid).to_vec();
        let backup = replicas[self.clients[client_idx as usize].rng.index(replicas.len())];

        let is_write =
            self.cfg.write_fraction > 0.0 && self.workload_rng.chance(self.cfg.write_fraction);
        let req = ReqId(self.issued);
        self.requests.insert(
            req.0,
            RequestState {
                client: client_idx,
                rgid,
                issue_idx: self.issued,
                sent_at: now,
                backup,
                primary: None,
                completed: false,
                copies: 0,
                dup_sent: false,
                is_write,
            },
        );
        self.issued += 1;
        self.devices
            .bump(DeviceId::Client(client_idx), DeviceCounter::Op, 1);

        if is_write {
            // Writes are plain traffic: one copy per replica, no replica
            // selection, complete when the last replica answers.
            self.writes_issued += 1;
            self.issue_write(now, req, &replicas, queue);
        } else if self.cfg.scheme.is_in_network() {
            self.netrs_send(now, req, queue);
        } else {
            self.client_select_and_send(now, req, &replicas, queue);
        }
    }

    fn issue_write(
        &mut self,
        now: SimTime,
        req: ReqId,
        replicas: &[ServerId],
        queue: &mut EventQueue<Ev>,
    ) {
        let state = self.requests.get_mut(&req.0).expect("request just created");
        state.copies = replicas.len() as u8;
        let client_idx = state.client;
        let client_host = self.clients[client_idx as usize].host;
        for (i, &server) in replicas.iter().enumerate() {
            let token = ServerToken::new(req, server, now, now, SimDuration::ZERO, now, None);
            let hash = self.flow_hash(req, 31 + i as u64);
            let latency =
                self.host_to_host(client_host, self.server_hosts[server.0 as usize], hash);
            queue.schedule_after(latency, Ev::ServerArrive { token });
            if self.observing() {
                let sink = HopSink::Copy(req.0, server.0);
                self.push_residency_hop(sink, DeviceId::Client(client_idx), now, now);
                self.observe_host_to_host(
                    now,
                    client_host,
                    self.server_hosts[server.0 as usize],
                    hash,
                    sink,
                    REQ_BYTES,
                );
            }
        }
    }

    // ---- CliRS / CliRS-R95 ----------------------------------------------

    fn client_select_and_send(
        &mut self,
        now: SimTime,
        req: ReqId,
        replicas: &[ServerId],
        queue: &mut EventQueue<Ev>,
    ) {
        let state = self.requests.get_mut(&req.0).expect("request just created");
        let client = &mut self.clients[state.client as usize];
        let target = client
            .selector
            .as_mut()
            .expect("client schemes run selectors")
            .select(replicas, now);
        state.primary = Some(target);
        self.dispatch_client_copy(now, req, target, queue);

        if self.cfg.scheme == Scheme::CliRsR95 {
            let state = &self.requests[&req.0];
            let client = &self.clients[state.client as usize];
            if client.hist.count() >= self.cfg.r95.min_samples {
                let deadline = client.hist.value_at_quantile(self.cfg.r95.quantile);
                queue.schedule_after(deadline, Ev::R95Check { req });
            }
        }
    }

    /// Sends one request copy from the client toward `server`, honouring
    /// the optional cubic rate controller.
    fn dispatch_client_copy(
        &mut self,
        now: SimTime,
        req: ReqId,
        server: ServerId,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(state) = self.requests.get_mut(&req.0) else {
            return;
        };
        let client_idx = state.client as usize;
        let gated = if let Some(ctl) = self.clients[client_idx].rate.as_mut() {
            if ctl.try_send(server, now) {
                None
            } else {
                Some(ctl.next_permit_at(server, now))
            }
        } else {
            None
        };
        if let Some(permit_at) = gated {
            // Hold the request at the client until a send token accrues.
            self.devices
                .bump(DeviceId::Client(client_idx as u32), DeviceCounter::Clamp, 1);
            let at = permit_at.max(now + SimDuration::from_nanos(1));
            queue.schedule_at(at, Ev::GatedSend { req, server });
            return;
        }
        state.copies += 1;
        let issued_at = state.sent_at;
        let client = &mut self.clients[client_idx];
        client
            .selector
            .as_mut()
            .expect("client schemes run selectors")
            .on_send(server, now);
        // Client-side selection has no steering hop: the interval from
        // issue to departure (rate gating, duplicate timers) is the
        // "selection" phase of the breakdown.
        let token = ServerToken::new(
            req,
            server,
            issued_at,
            issued_at,
            SimDuration::ZERO,
            now,
            None,
        );
        let hash = self.flow_hash(req, u64::from(server.0));
        let client_host = self.clients[client_idx].host;
        let latency = self.host_to_host(client_host, self.server_hosts[server.0 as usize], hash);
        queue.schedule_after(latency, Ev::ServerArrive { token });
        if self.observing() {
            let sink = HopSink::Copy(req.0, server.0);
            // The copy sat at the client from issue to departure.
            self.push_residency_hop(sink, DeviceId::Client(client_idx as u32), issued_at, now);
            self.observe_host_to_host(
                now,
                client_host,
                self.server_hosts[server.0 as usize],
                hash,
                sink,
                REQ_BYTES,
            );
        }
    }

    fn on_r95_check(&mut self, now: SimTime, req: ReqId, queue: &mut EventQueue<Ev>) {
        let Some(state) = self.requests.get_mut(&req.0) else {
            return; // long since completed and cleaned up
        };
        if state.completed || state.dup_sent {
            return;
        }
        state.dup_sent = true;
        let rgid = state.rgid;
        let primary = state.primary;
        let client_idx = state.client as usize;
        let replicas = self.ring.groups().replicas(rgid).to_vec();
        let ranked = self.clients[client_idx]
            .selector
            .as_mut()
            .expect("client schemes run selectors")
            .rank(&replicas, now);
        let Some(dup) = ranked.into_iter().find(|&s| Some(s) != primary) else {
            return; // replication factor 1: nowhere else to go
        };
        self.duplicates += 1;
        self.dispatch_client_copy(now, req, dup, queue);
    }

    // ---- NetRS ----------------------------------------------------------

    fn netrs_send(&mut self, now: SimTime, req: ReqId, queue: &mut EventQueue<Ev>) {
        let state = self.requests.get_mut(&req.0).expect("request just created");
        let client_host = self.clients[state.client as usize].host;
        let tor = self.topo.tor_of_host(client_host);
        let mut pkt = PacketMeta::Request {
            rid: RsnodeId(0),
            magic: MagicField::REQUEST,
            rgid: self
                .groups
                .group_of_host(client_host)
                .expect("clients always have a traffic group"),
            src_host: client_host.0,
            dst_host: self.server_hosts[state.backup.0 as usize].0,
        };
        let action = self.rules[&tor].ingress(&mut pkt, true);
        let client_idx = state.client;
        match action {
            IngressAction::Forward => {
                // Degraded Replica Selection: straight to the backup.
                state.copies += 1;
                let backup = state.backup;
                let token = ServerToken::new(req, backup, now, now, SimDuration::ZERO, now, None);
                let hash = self.flow_hash(req, 7);
                let latency =
                    self.host_to_host(client_host, self.server_hosts[backup.0 as usize], hash);
                queue.schedule_after(latency, Ev::ServerArrive { token });
                self.devices
                    .bump(DeviceId::Switch(tor.0), DeviceCounter::Clamp, 1);
                if self.observing() {
                    let sink = HopSink::Copy(req.0, backup.0);
                    self.push_residency_hop(sink, DeviceId::Client(client_idx), now, now);
                    self.observe_host_to_host(
                        now,
                        client_host,
                        self.server_hosts[backup.0 as usize],
                        hash,
                        sink,
                        REQ_BYTES,
                    );
                }
            }
            IngressAction::ToAccelerator => {
                // The RSNode is this very ToR: one host→ToR link.
                queue.schedule_after(self.link(1), Ev::RsnodeArrive { req, op: tor });
                if self.observing() {
                    let sink = HopSink::Pending(req.0);
                    self.push_residency_hop(sink, DeviceId::Client(client_idx), now, now);
                    self.observe_host_to_switch(now, client_host, &[tor], sink, REQ_BYTES);
                }
            }
            IngressAction::ForwardTowardRsnode(rid) => {
                let op = self
                    .controller
                    .as_ref()
                    .expect("in-network scheme")
                    .switch_of_rsnode(rid)
                    .expect("deployed rules only reference live operators");
                let hash = self.flow_hash(req, 11);
                let latency = self.host_to_switch(client_host, op, hash);
                queue.schedule_after(latency, Ev::RsnodeArrive { req, op });
                if self.observing() {
                    let sink = HopSink::Pending(req.0);
                    self.push_residency_hop(sink, DeviceId::Client(client_idx), now, now);
                    let p = self.topo.path_host_to_switch(client_host, op, hash);
                    self.observe_host_to_switch(now, client_host, &p, sink, REQ_BYTES);
                }
            }
            IngressAction::CloneToAcceleratorAndForward => {
                unreachable!("requests are never cloned")
            }
        }
    }

    fn on_rsnode_arrive(
        &mut self,
        now: SimTime,
        req: ReqId,
        op: SwitchId,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(operator) = self.operators.get_mut(&op) else {
            // The operator was retired by a re-plan while the request was
            // in flight; fall back to the client's backup replica (DRS
            // semantics for in-flight stragglers).
            self.forward_to_backup(now, req, op, queue);
            return;
        };
        let (done_at, waited) = operator.accel.schedule_selection_timed(now);
        queue.schedule_at(
            done_at,
            Ev::Select {
                req,
                op,
                arrived: now,
                waited,
            },
        );
    }

    fn forward_to_backup(
        &mut self,
        now: SimTime,
        req: ReqId,
        from: SwitchId,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(state) = self.requests.get_mut(&req.0) else {
            return;
        };
        state.copies += 1;
        let backup = state.backup;
        // The hop to the retired RSNode was pure network steering.
        let token = ServerToken::new(
            req,
            backup,
            state.sent_at,
            now,
            SimDuration::ZERO,
            now,
            None,
        );
        let hash = self.flow_hash(req, 13);
        let latency = self.switch_to_host(from, self.server_hosts[backup.0 as usize], hash);
        queue.schedule_after(latency, Ev::ServerArrive { token });
        self.devices
            .bump(DeviceId::Switch(from.0), DeviceCounter::Drop, 1);
        if self.observing() {
            // Any time spent at the retired operator belongs to its
            // switch; then the copy heads for the backup replica.
            self.seal_steer_hops(req.0, backup.0, DeviceId::Switch(from.0), now);
            self.observe_switch_to_host(
                now,
                from,
                self.server_hosts[backup.0 as usize],
                hash,
                HopSink::Copy(req.0, backup.0),
                REQ_BYTES,
            );
        }
    }

    fn on_select(
        &mut self,
        now: SimTime,
        req: ReqId,
        op: SwitchId,
        arrived: SimTime,
        waited: SimDuration,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(operator) = self.operators.get_mut(&op) else {
            self.forward_to_backup(now, req, op, queue);
            return;
        };
        let Some(state) = self.requests.get_mut(&req.0) else {
            return;
        };
        let replicas = self.ring.groups().replicas(state.rgid);
        let target = operator.selector.select(replicas, now);
        operator.selector.on_send(target, now);
        state.primary = Some(target);
        state.copies += 1;
        let token = ServerToken::new(req, target, state.sent_at, arrived, waited, now, Some(op));
        let hash = self.flow_hash(req, 17);
        let latency = self.switch_to_host(op, self.server_hosts[target.0 as usize], hash);
        queue.schedule_after(latency, Ev::ServerArrive { token });
        let accel = DeviceId::Accelerator(op.0);
        self.devices.selection(accel, waited);
        self.devices.busy(accel, self.cfg.accelerator.service_time);
        if self.observing() {
            // The copy occupied the RSNode from arrival through selection.
            self.seal_steer_hops(req.0, target.0, accel, now);
            self.observe_switch_to_host(
                now,
                op,
                self.server_hosts[target.0 as usize],
                hash,
                HopSink::Copy(req.0, target.0),
                REQ_BYTES,
            );
        }
    }

    // ---- servers ----------------------------------------------------

    fn on_server_arrive(
        &mut self,
        now: SimTime,
        mut token: ServerToken,
        queue: &mut EventQueue<Ev>,
    ) {
        token.server_arrived_at = now;
        // Provisional: correct if a slot is free; a queued copy gets its
        // real service start stamped when it is dispatched.
        token.service_started_at = now;
        let dev = DeviceId::Server(token.server.0);
        self.devices.bump(dev, DeviceCounter::Op, 1);
        let server = &mut self.servers[token.server.0 as usize];
        match server.arrive(token, now) {
            Arrival::Started { finish_at } => {
                queue.schedule_at(
                    finish_at,
                    Ev::ServerDone {
                        server: token.server,
                        token,
                    },
                );
            }
            Arrival::Queued => {
                // All slots busy: the copy joins the wait queue
                // (depth matches `Server::waiting`).
                self.devices.queue_delta(now, dev, 1);
            }
        }
    }

    fn on_server_done(
        &mut self,
        now: SimTime,
        server_id: ServerId,
        mut token: ServerToken,
        queue: &mut EventQueue<Ev>,
    ) {
        token.served_at = now;
        let server_dev = DeviceId::Server(server_id.0);
        self.devices
            .busy(server_dev, now - token.service_started_at);
        let server = &mut self.servers[server_id.0 as usize];
        let status = server.status();
        if let Some((mut next_token, finish_at)) = server.complete(now).next {
            // The queued copy enters service now that a slot freed up.
            next_token.service_started_at = now;
            queue.schedule_at(
                finish_at,
                Ev::ServerDone {
                    server: server_id,
                    token: next_token,
                },
            );
            self.devices.queue_delta(now, server_dev, -1);
        }

        let Some(state) = self.requests.get(&token.req.0) else {
            return;
        };
        let client_host = self.clients[state.client as usize].host;
        let server_host = self.server_hosts[server_id.0 as usize];
        let hash = self.flow_hash(token.req, 23);
        let sink = HopSink::Copy(token.req.0, token.server.0);
        if self.observing() {
            // The copy occupied the server from arrival (queue + service).
            self.push_residency_hop(sink, server_dev, token.server_arrived_at, now);
        }

        match token.rsnode {
            Some(op) => {
                // The response must traverse its RSNode (§I "Multiple
                // Paths"): server → RSNode switch → client, with a clone
                // peeled off to the accelerator at the RSNode.
                let at_rsnode = now + self.host_to_switch(server_host, op, hash);
                if let Some(operator) = self.operators.get_mut(&op) {
                    let update_at = operator.accel.schedule_clone(at_rsnode);
                    let fb = Feedback {
                        server: server_id,
                        queue_len: status.queue_len,
                        service_time: status.service_time(),
                        latency: at_rsnode - token.rsnode_sent_at,
                    };
                    queue.schedule_at(update_at, Ev::SelectorUpdate { op, fb });
                    let accel = DeviceId::Accelerator(op.0);
                    self.devices.bump(accel, DeviceCounter::CloneUpdate, 1);
                    self.devices.busy(accel, self.cfg.accelerator.service_time);
                }
                let at_client = at_rsnode + self.switch_to_host(op, client_host, hash);
                queue.schedule_at(at_client, Ev::ClientReceive { token, status });
                if self.observing() {
                    let p = self.topo.path_host_to_switch(server_host, op, hash);
                    self.observe_host_to_switch(now, server_host, &p, sink, RESP_BYTES);
                    self.observe_switch_to_host(at_rsnode, op, client_host, hash, sink, RESP_BYTES);
                }
            }
            None => {
                let latency = self.host_to_host(server_host, client_host, hash);
                queue.schedule_after(latency, Ev::ClientReceive { token, status });
                if self.observing() {
                    self.observe_host_to_host(
                        now,
                        server_host,
                        client_host,
                        hash,
                        sink,
                        RESP_BYTES,
                    );
                }
            }
        }
    }

    fn on_selector_update(&mut self, now: SimTime, op: SwitchId, fb: Feedback) {
        if let Some(operator) = self.operators.get_mut(&op) {
            operator.selector.on_response(&fb, now);
        }
    }

    // ---- clients ----------------------------------------------------

    fn on_client_receive(
        &mut self,
        now: SimTime,
        token: ServerToken,
        status: ServerStatus,
        queue: &mut EventQueue<Ev>,
    ) {
        let _ = queue;
        let Some(state) = self.requests.get_mut(&token.req.0) else {
            return;
        };
        state.copies = state.copies.saturating_sub(1);
        let client_idx = state.client as usize;
        let is_write = state.is_write;
        // Reads complete on the first response; writes on the last.
        let first_completion = if is_write {
            state.copies == 0 && !state.completed
        } else {
            !state.completed
        };
        if first_completion {
            state.completed = true;
            self.completed += 1;
        }
        let latency = now - state.sent_at;
        let issue_idx = state.issue_idx;
        let rgid = state.rgid;
        let drained = state.copies == 0;
        if drained {
            self.requests.remove(&token.req.0);
        }

        // Phase decomposition: consecutive timestamp differences along
        // the copy's path, telescoping exactly to `now - issued_at`.
        let steer = token.steered_at - token.issued_at;
        let selection = token.copy_sent_at - token.steered_at;
        let to_server = token.server_arrived_at - token.copy_sent_at;
        let server_queue = token.service_started_at - token.server_arrived_at;
        let service = token.served_at - token.service_started_at;
        let reply = now - token.served_at;
        let hops = self
            .hop_log
            .as_mut()
            .and_then(|log| log.remove(&(token.req.0, token.server.0)))
            .unwrap_or_default();
        if let Some(w) = self.tracer.as_mut() {
            use std::io::Write as _;
            let rec = TraceRecord {
                req: token.req.0,
                server: token.server.0,
                first: first_completion,
                write: is_write,
                issued_ns: token.issued_at.as_nanos(),
                received_ns: now.as_nanos(),
                steer_ns: steer.as_nanos(),
                selection_ns: selection.as_nanos(),
                selection_wait_ns: token.selection_wait.as_nanos(),
                to_server_ns: to_server.as_nanos(),
                server_queue_ns: server_queue.as_nanos(),
                service_ns: service.as_nanos(),
                reply_ns: reply.as_nanos(),
                e2e_ns: (now - token.issued_at).as_nanos(),
                hops,
            };
            let line = serde_json::to_string(&rec).expect("trace record serializes");
            let _ = writeln!(w, "{line}");
        }
        if first_completion && !is_write && issue_idx >= self.warmup_cutoff {
            self.breakdown.network.record(steer + to_server + reply);
            self.breakdown.selection.record(selection);
            self.breakdown.server_queue.record(server_queue);
            self.breakdown.service.record(service);
        }

        if is_write {
            // Plain traffic: no selector feedback, no monitor counting.
            if first_completion && issue_idx >= self.warmup_cutoff {
                self.write_hist.record(latency);
            }
            return;
        }

        // Client-side selector feedback (CliRS schemes observe every
        // copy's response).
        let copy_latency = now - token.copy_sent_at;
        let client = &mut self.clients[client_idx];
        if let Some(selector) = client.selector.as_mut() {
            selector.on_response(
                &Feedback {
                    server: token.server,
                    queue_len: status.queue_len,
                    service_time: status.service_time(),
                    latency: copy_latency,
                },
                now,
            );
        }
        if let Some(ctl) = client.rate.as_mut() {
            ctl.on_response(token.server, now);
        }

        if first_completion {
            client.hist.record(latency);
            if issue_idx >= self.warmup_cutoff {
                self.hist.record(latency);
            }
            // Monitor accounting: the response leaves the network at the
            // client's ToR (§IV-D).
            if !self.monitors.is_empty() {
                let client_host = client.host;
                let server_rack = self
                    .topo
                    .rack_of_host(self.server_hosts[token.server.0 as usize]);
                let marker = self
                    .controller
                    .as_ref()
                    .expect("monitors only exist in-network")
                    .marker_of_rack(server_rack);
                let tor = self.topo.tor_of_host(client_host);
                if let Some(m) = self.monitors.get_mut(&tor) {
                    m.record(rgid, marker);
                }
            }
        }
    }

    // ---- control plane ------------------------------------------------

    /// §III-C(ii): an operator whose accelerator ran hotter than the
    /// policy's limit over the last window has its traffic groups
    /// degraded to DRS (they recover at the next re-plan, if any).
    fn on_overload_check(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        let Some(policy) = self.cfg.overload else {
            return;
        };
        if !self.drained() {
            queue.schedule_after(policy.interval, Ev::OverloadCheck);
        }
        let window_core_ns =
            u128::from(policy.interval.as_nanos()) * u128::from(self.cfg.accelerator.cores);
        let mut overloaded = Vec::new();
        let mut ops: Vec<(SwitchId, &Operator)> =
            self.operators.iter().map(|(&sw, op)| (sw, op)).collect();
        ops.sort_unstable_by_key(|&(sw, _)| sw);
        for (sw, op) in ops {
            let busy = op.accel.stats().busy_core_ns;
            let last = self.last_accel_busy.insert(sw, busy).unwrap_or(0);
            // A re-plan may have recreated this operator with a fresh
            // accelerator, putting its counter behind the recorded one.
            let util = busy.saturating_sub(last) as f64 / window_core_ns as f64;
            if util > policy.utilization_limit {
                overloaded.push(sw);
            }
        }
        if overloaded.is_empty() {
            return;
        }
        let controller = self
            .controller
            .as_mut()
            .expect("overload checks only run in-network");
        for sw in overloaded {
            let affected = controller.on_operator_overload(sw);
            if !affected.is_empty() {
                self.overload_events += 1;
            }
        }
        self.rules = controller.deploy(&self.groups);
        let _ = now;
    }

    fn on_replan(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        if self.issued >= self.cfg.requests {
            return; // wind down with the workload
        }
        if let PlanSource::Monitored { interval } = self.cfg.plan_source {
            queue.schedule_after(interval, Ev::Replan);
            // Snapshot in switch order so the traffic matrix accumulates
            // rates in a run-independent float order.
            let mut tors: Vec<SwitchId> = self.monitors.keys().copied().collect();
            tors.sort_unstable();
            let snapshots: Vec<_> = tors
                .iter()
                .map(|tor| {
                    self.monitors
                        .get_mut(tor)
                        .expect("key just listed")
                        .snapshot(now)
                })
                .collect();
            let traffic = TrafficMatrix::from_snapshots(self.groups.len(), &snapshots);
            if traffic.total() <= 0.0 {
                return; // no signal yet
            }
            let solver = self.cfg.plan_solver;
            let controller = self
                .controller
                .as_mut()
                .expect("monitored implies in-network");
            controller.plan(&self.groups, &traffic, solver);
            self.rules = controller.deploy(&self.groups);
            self.rebuild_operators(SimRng::from_seed(
                self.cfg.seed ^ 0xFEED_F00D ^ now.as_nanos(),
            ));
            self.drained_replans += 1;
        }
    }

    /// Injects a fail-stop fault into the operator at `sw` (§III-C(iii)):
    /// its traffic groups degrade to DRS and rules are redeployed.
    /// In-flight requests already heading there are served best-effort.
    pub fn fail_operator(&mut self, sw: SwitchId) -> Vec<u32> {
        let controller = self
            .controller
            .as_mut()
            .expect("operator failure only applies to in-network schemes");
        let affected = controller.on_operator_failure(sw);
        self.rules = controller.deploy(&self.groups);
        affected
    }

    // ---- results --------------------------------------------------------

    /// Collects run statistics (call after the engine drains).
    #[must_use]
    pub fn stats(&self, now: SimTime, events: u64) -> RunStats {
        let rsnode_census = self
            .controller
            .as_ref()
            .map(|c| c.current_plan().tier_census(&self.topo))
            .unwrap_or([0; 3]);
        // Sort live operators by switch id: float summation order must
        // not depend on HashMap iteration, or repeated identical runs
        // disagree in the last bits of the mean.
        let mut live: Vec<(SwitchId, &Operator)> =
            self.operators.iter().map(|(&sw, op)| (sw, op)).collect();
        live.sort_unstable_by_key(|&(sw, _)| sw);
        let live_accels = live.into_iter().map(|(_, op)| &op.accel);
        let retired_accels = self.retired_operators.iter().map(|op| &op.accel);
        let accels: Vec<&Accelerator> = live_accels.chain(retired_accels).collect();
        let mean_accel_util = if accels.is_empty() {
            0.0
        } else {
            accels.iter().map(|a| a.utilization(now)).sum::<f64>() / accels.len() as f64
        };
        let max_accel_util = accels
            .iter()
            .map(|a| a.utilization(now))
            .fold(0.0_f64, f64::max);
        let mean_selection_wait = if accels.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(
                (accels
                    .iter()
                    .map(|a| a.mean_selection_wait().as_nanos() as u128)
                    .sum::<u128>()
                    / accels.len() as u128) as u64,
            )
        };
        RunStats {
            scheme: self.cfg.scheme,
            latency: self.hist.summary(),
            breakdown: self.breakdown.summarize(),
            issued: self.issued,
            completed: self.completed,
            duplicates: self.duplicates,
            rsnode_count: rsnode_census.iter().sum(),
            rsnode_census,
            drs_groups: self
                .controller
                .as_ref()
                .map_or(0, |c| c.current_plan().drs.len()),
            mean_accel_utilization: mean_accel_util,
            max_accel_utilization: max_accel_util,
            mean_selection_wait,
            mean_server_utilization: self.servers.iter().map(|s| s.utilization(now)).sum::<f64>()
                / f64::from(self.cfg.servers),
            replans: self.drained_replans,
            writes_issued: self.writes_issued,
            write_latency: self.write_hist.summary(),
            overload_events: self.overload_events,
            sim_end: now,
            events,
        }
    }

    /// The latency histogram accumulated so far (post-warmup requests).
    #[must_use]
    pub fn latency_histogram(&self) -> &Histogram {
        &self.hist
    }

    /// The installed Replica Selection Plan, if the scheme has one.
    #[must_use]
    pub fn current_plan(&self) -> Option<&Rsp> {
        self.controller.as_ref().map(NetRsController::current_plan)
    }

    /// The simulated topology.
    #[must_use]
    pub fn topology(&self) -> &FatTree {
        &self.topo
    }

    /// Census of operators by tier currently holding selector state.
    #[must_use]
    pub fn operator_tiers(&self) -> [usize; 3] {
        let mut census = [0usize; 3];
        for sw in self.operators.keys() {
            census[self.topo.tier(*sw).id() as usize] += 1;
        }
        census
    }

    /// Requests issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Logical requests completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

impl<D: DeviceProbe> World for Cluster<D> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Generate { gen } => self.on_generate(now, gen, queue),
            Ev::GatedSend { req, server } => self.dispatch_client_copy(now, req, server, queue),
            Ev::RsnodeArrive { req, op } => self.on_rsnode_arrive(now, req, op, queue),
            Ev::Select {
                req,
                op,
                arrived,
                waited,
            } => self.on_select(now, req, op, arrived, waited, queue),
            Ev::ServerArrive { token } => self.on_server_arrive(now, token, queue),
            Ev::ServerDone { server, token } => self.on_server_done(now, server, token, queue),
            Ev::SelectorUpdate { op, fb } => self.on_selector_update(now, op, fb),
            Ev::ClientReceive { token, status } => {
                self.on_client_receive(now, token, status, queue);
            }
            Ev::R95Check { req } => self.on_r95_check(now, req, queue),
            Ev::Fluctuate { server } => {
                self.servers[server.0 as usize].fluctuate();
                if !self.drained() {
                    queue.schedule_after(
                        self.cfg.server.fluctuation_interval,
                        Ev::Fluctuate { server },
                    );
                }
            }
            Ev::OverloadCheck => self.on_overload_check(now, queue),
            Ev::Replan => self.on_replan(now, queue),
            Ev::Sample => self.on_sample(now, queue),
        }
    }
}
