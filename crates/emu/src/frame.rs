//! The emulation's link-layer frame: addressing plus an SDN-style source
//! route, wrapping a byte-exact NetRS packet.
//!
//! ```text
//! frame := src_host(4) dst_host(4) route_len(1) route(2·len) body(...)
//! ```
//!
//! The route is the ordered list of switch IDs the frame still has to
//! traverse; each switch pops itself off the head and forwards to the
//! next entry (or delivers to `dst_host` when the route is exhausted).
//! ToRs and selectors rewrite the route exactly where the paper's SDN
//! rules would re-steer a packet.

use bytes::{BufMut, Bytes, BytesMut};

/// Maximum route length (a fat-tree via-path is at most 10 switches).
pub const MAX_ROUTE: usize = 16;

/// A link-layer frame of the UDP emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmuFrame {
    /// Sending host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Remaining switch hops (front = next).
    pub route: Vec<u16>,
    /// The NetRS packet (or arbitrary payload) carried.
    pub body: Bytes,
}

/// Frame decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header requires.
    Truncated,
    /// The declared route exceeds [`MAX_ROUTE`].
    RouteTooLong(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::RouteTooLong(n) => write!(f, "route of {n} hops exceeds {MAX_ROUTE}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl EmuFrame {
    /// Serializes the frame.
    ///
    /// # Panics
    ///
    /// Panics if the route exceeds [`MAX_ROUTE`] hops.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        assert!(self.route.len() <= MAX_ROUTE, "route too long");
        let mut buf = BytesMut::with_capacity(9 + 2 * self.route.len() + self.body.len());
        buf.put_u32(self.src);
        buf.put_u32(self.dst);
        buf.put_u8(self.route.len() as u8);
        for &hop in &self.route {
            buf.put_u16(hop);
        }
        buf.put_slice(&self.body);
        buf.freeze()
    }

    /// Parses a frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on short buffers or oversized routes.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < 9 {
            return Err(FrameError::Truncated);
        }
        let src = u32::from_be_bytes(buf[0..4].try_into().expect("length checked"));
        let dst = u32::from_be_bytes(buf[4..8].try_into().expect("length checked"));
        let len = buf[8] as usize;
        if len > MAX_ROUTE {
            return Err(FrameError::RouteTooLong(len));
        }
        let need = 9 + 2 * len;
        if buf.len() < need {
            return Err(FrameError::Truncated);
        }
        let route = (0..len)
            .map(|i| u16::from_be_bytes(buf[9 + 2 * i..11 + 2 * i].try_into().expect("checked")))
            .collect();
        Ok(EmuFrame {
            src,
            dst,
            route,
            body: Bytes::copy_from_slice(&buf[need..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let f = EmuFrame {
            src: 3,
            dst: 900,
            route: vec![1, 130, 260, 140, 56],
            body: Bytes::from_static(b"netrs packet bytes"),
        };
        let wire = f.encode();
        assert_eq!(EmuFrame::decode(&wire).unwrap(), f);
    }

    #[test]
    fn empty_route_and_body() {
        let f = EmuFrame {
            src: 0,
            dst: 1,
            route: vec![],
            body: Bytes::new(),
        };
        assert_eq!(EmuFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn truncation_detected() {
        assert_eq!(
            EmuFrame::decode(&[0u8; 4]).unwrap_err(),
            FrameError::Truncated
        );
        let f = EmuFrame {
            src: 1,
            dst: 2,
            route: vec![7, 8],
            body: Bytes::new(),
        };
        let wire = f.encode();
        assert_eq!(
            EmuFrame::decode(&wire[..wire.len() - 1]).unwrap_err(),
            FrameError::Truncated
        );
    }

    #[test]
    fn oversized_route_rejected() {
        let mut bytes = vec![0u8; 9];
        bytes[8] = (MAX_ROUTE + 1) as u8;
        assert_eq!(
            EmuFrame::decode(&bytes).unwrap_err(),
            FrameError::RouteTooLong(MAX_ROUTE + 1)
        );
    }

    #[test]
    #[should_panic(expected = "route too long")]
    fn encoding_oversized_route_panics() {
        let f = EmuFrame {
            src: 0,
            dst: 0,
            route: vec![0; MAX_ROUTE + 1],
            body: Bytes::new(),
        };
        let _ = f.encode();
    }
}
