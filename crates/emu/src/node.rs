//! The emulated data center: switch threads, server threads and a client
//! driver, all speaking byte-exact NetRS over loopback UDP.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use netrs::{ControllerConfig, NetRsController, PlanSolver, TrafficGroups, TrafficMatrix};
use netrs_kvstore::{Ring, ServerId, ServerStatus};
use netrs_netdev::{IngressAction, NetRsRules, PacketMeta};
use netrs_selection::{C3Config, Feedback, ReplicaSelector, SelectorKind};
use netrs_simcore::{Histogram, SimDuration, SimRng, SimTime};
use netrs_topology::{FatTree, HostId, SwitchId};
use netrs_wire::{classify, MagicField, PacketKind, RequestHeader, ResponseHeader, Rgid, RsnodeId};

use crate::frame::EmuFrame;

/// Emulation parameters.
#[derive(Debug, Clone)]
pub struct EmuConfig {
    /// Fat-tree arity (keep small: every switch is a thread).
    pub arity: u32,
    /// Number of storage servers.
    pub servers: u32,
    /// Number of client hosts.
    pub clients: u32,
    /// Replication factor.
    pub replication: u32,
    /// Virtual nodes per server.
    pub vnodes: u32,
    /// Key-space size.
    pub keys: u64,
    /// Mean (exponential) service time slept by servers.
    pub mean_service: Duration,
    /// Traffic groups forced into Degraded Replica Selection, to
    /// exercise the §III-C path.
    pub drs_groups: Vec<u32>,
    /// Random seed (placement, ring, service times, selection).
    pub seed: u64,
}

impl Default for EmuConfig {
    fn default() -> Self {
        EmuConfig {
            arity: 4,
            servers: 4,
            clients: 2,
            replication: 2,
            vnodes: 16,
            keys: 10_000,
            mean_service: Duration::from_micros(200),
            drs_groups: Vec::new(),
            seed: 1,
        }
    }
}

/// Shared observability counters, updated by the switch threads.
#[derive(Debug, Default)]
pub struct Counters {
    /// Replica selections performed at RSNodes.
    pub selections: AtomicU64,
    /// Response clones processed at RSNodes.
    pub clones: AtomicU64,
    /// Requests demoted to Degraded Replica Selection.
    pub drs: AtomicU64,
    /// Frames forwarded by switches.
    pub forwarded: AtomicU64,
}

/// Results of [`EmuCluster::run_workload`].
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Requests sent.
    pub sent: u64,
    /// Responses received.
    pub completed: u64,
    /// Responses that took the DRS path (illegal RSNode ID).
    pub drs_responses: u64,
    /// Round-trip latency distribution.
    pub rtt: netrs_simcore::Summary,
    /// Replica selections observed at RSNodes.
    pub selections: u64,
    /// Response clones observed at RSNodes.
    pub clones: u64,
}

struct AddressBook {
    switch_addr: Vec<SocketAddr>,
    host_addr: HashMap<u32, SocketAddr>,
}

impl AddressBook {
    fn of_switch(&self, sw: SwitchId) -> SocketAddr {
        self.switch_addr[sw.0 as usize]
    }
}

/// A running loopback emulation.
pub struct EmuCluster {
    cfg: EmuConfig,
    topo: FatTree,
    ring: Arc<Ring>,
    client_hosts: Vec<HostId>,
    server_host_of: Arc<HashMap<u32, u32>>, // ServerId.0 -> HostId.0
    book: Arc<AddressBook>,
    counters: Arc<Counters>,
    client_sockets: Vec<UdpSocket>,
    threads: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    plan_rsnodes: usize,
}

const RECV_TIMEOUT: Duration = Duration::from_millis(50);

fn bind() -> io::Result<UdpSocket> {
    let sock = UdpSocket::bind(("127.0.0.1", 0))?;
    sock.set_read_timeout(Some(RECV_TIMEOUT))?;
    Ok(sock)
}

impl EmuCluster {
    /// Binds every socket, plans RSNode placement, deploys rules and
    /// spawns one thread per switch and per server.
    ///
    /// # Errors
    ///
    /// Returns any socket-setup error.
    ///
    /// # Panics
    ///
    /// Panics if the configuration places more hosts than the topology
    /// has, or violates ring invariants.
    pub fn start(cfg: EmuConfig) -> io::Result<Self> {
        let topo = FatTree::new(cfg.arity).expect("even arity");
        assert!(
            cfg.servers + cfg.clients <= topo.num_hosts(),
            "too many hosts for the topology"
        );
        let mut rng = SimRng::from_seed(cfg.seed);
        let picks = rng.sample_indices(
            topo.num_hosts() as usize,
            (cfg.servers + cfg.clients) as usize,
        );
        let hosts: Vec<HostId> = picks.into_iter().map(|h| HostId(h as u32)).collect();
        let server_hosts: Vec<HostId> = hosts[..cfg.servers as usize].to_vec();
        let client_hosts: Vec<HostId> = hosts[cfg.servers as usize..].to_vec();
        let server_host_of: Arc<HashMap<u32, u32>> = Arc::new(
            server_hosts
                .iter()
                .enumerate()
                .map(|(i, h)| (i as u32, h.0))
                .collect(),
        );

        let ring = Arc::new(
            Ring::new(cfg.servers, cfg.vnodes, cfg.replication, cfg.seed).expect("valid ring"),
        );

        // Plan placement and deploy rules exactly as the controller does.
        let groups = TrafficGroups::rack_level(&topo, &client_hosts);
        let rates: Vec<(HostId, f64)> = client_hosts.iter().map(|&h| (h, 1_000.0)).collect();
        let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &server_hosts);
        let mut controller = NetRsController::new(topo.clone(), ControllerConfig::default());
        let mut rsp = controller
            .plan(&groups, &traffic, PlanSolver::Exact { node_limit: 10_000 })
            .clone();
        for &g in &cfg.drs_groups {
            rsp.assignment.remove(&g);
            rsp.drs.insert(g);
        }
        let plan_rsnodes = rsp.rsnodes().len();
        let rsnodes = rsp.rsnodes();
        controller.install(rsp);
        let rules = controller.deploy(&groups);

        // Bind sockets: one per switch, one per host.
        let mut switch_sockets = Vec::new();
        let mut switch_addr = Vec::new();
        for _ in topo.switches() {
            let s = bind()?;
            switch_addr.push(s.local_addr()?);
            switch_sockets.push(s);
        }
        let mut host_addr = HashMap::new();
        let mut server_sockets = Vec::new();
        for (i, h) in server_hosts.iter().enumerate() {
            let s = bind()?;
            host_addr.insert(h.0, s.local_addr()?);
            server_sockets.push((ServerId(i as u32), *h, s));
        }
        let mut client_sockets = Vec::new();
        for h in &client_hosts {
            let s = bind()?;
            host_addr.insert(h.0, s.local_addr()?);
            client_sockets.push(s);
        }
        let book = Arc::new(AddressBook {
            switch_addr,
            host_addr,
        });

        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let mut threads = Vec::new();

        // Switch threads.
        for (idx, socket) in switch_sockets.into_iter().enumerate() {
            let sw = SwitchId(idx as u32);
            let ctx = SwitchCtx {
                sw,
                rules: rules[&sw].clone(),
                selector: rsnodes.contains(&sw).then(|| {
                    SelectorKind::C3.build(
                        C3Config::default(),
                        SimRng::from_seed(cfg.seed ^ (0xACCE1 + u64::from(sw.0))),
                    )
                }),
                topo: topo.clone(),
                ring: Arc::clone(&ring),
                server_host_of: Arc::clone(&server_host_of),
                book: Arc::clone(&book),
                counters: Arc::clone(&counters),
                shutdown: Arc::clone(&shutdown),
                epoch: Instant::now(),
                pending: HashMap::new(),
            };
            threads.push(std::thread::spawn(move || switch_loop(socket, ctx)));
        }

        // Server threads.
        for (sid, host, socket) in server_sockets {
            let book = Arc::clone(&book);
            let topo2 = topo.clone();
            let shutdown2 = Arc::clone(&shutdown);
            let mean = cfg.mean_service;
            let mut srng = SimRng::from_seed(cfg.seed ^ (0x5E4 + u64::from(sid.0)));
            threads.push(std::thread::spawn(move || {
                server_loop(
                    socket, sid, host, &topo2, &book, &shutdown2, mean, &mut srng,
                );
            }));
        }

        Ok(EmuCluster {
            cfg,
            topo,
            ring,
            client_hosts,
            server_host_of,
            book,
            counters,
            client_sockets,
            threads,
            shutdown,
            plan_rsnodes,
        })
    }

    /// Number of RSNodes in the deployed plan.
    #[must_use]
    pub fn rsnodes(&self) -> usize {
        self.plan_rsnodes
    }

    /// The shared observability counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Sends `n` requests (round-robin over the client hosts, one
    /// outstanding at a time) and collects their responses.
    ///
    /// # Errors
    ///
    /// Returns socket errors; a response that does not arrive within the
    /// timeout is counted as lost, not an error.
    pub fn run_workload(&self, n: u64) -> io::Result<WorkloadReport> {
        let mut rng = SimRng::from_seed(self.cfg.seed ^ 0xC11E57);
        let mut hist = Histogram::new();
        let mut completed = 0u64;
        let mut drs_responses = 0u64;
        let mut buf = vec![0u8; 65_536];

        for i in 0..n {
            let c = (i % self.client_sockets.len() as u64) as usize;
            let socket = &self.client_sockets[c];
            let my_host = self.client_hosts[c];
            let key = rng.below(self.cfg.keys);
            let rgid = self.ring.group_of_key(key);
            let replicas = self.ring.groups().replicas(rgid);
            let backup = replicas[rng.index(replicas.len())];
            let backup_host = self.server_host_of[&backup.0];

            let header = RequestHeader {
                rid: RsnodeId(0),
                magic: MagicField::REQUEST,
                rv: (i & 0xFFFF) as u16,
                rgid: Rgid::new(rgid).expect("group ids fit 3 bytes"),
            };
            let body = header.encode(&i.to_be_bytes());
            let frame = EmuFrame {
                src: my_host.0,
                dst: backup_host,
                route: vec![],
                body,
            };
            let tor = self.topo.tor_of_host(my_host);
            let started = Instant::now();
            socket.send_to(&frame.encode(), self.book.of_switch(tor))?;

            // Await this request's response (responses carry the request
            // index in their payload).
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match socket.recv_from(&mut buf) {
                    Ok((len, _)) => {
                        let Ok(resp) = EmuFrame::decode(&buf[..len]) else {
                            continue;
                        };
                        let Ok((hdr, payload)) = ResponseHeader::decode(&resp.body) else {
                            continue;
                        };
                        if payload.len() == 8
                            && u64::from_be_bytes(payload[..8].try_into().expect("len checked"))
                                == i
                        {
                            completed += 1;
                            if !hdr.rid.is_legal() {
                                drs_responses += 1;
                            }
                            hist.record(SimDuration::from_nanos(
                                started.elapsed().as_nanos() as u64
                            ));
                            break;
                        }
                    }
                    Err(ref e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        if Instant::now() > deadline {
                            break; // counted as lost
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        Ok(WorkloadReport {
            sent: n,
            completed,
            drs_responses,
            rtt: hist.summary(),
            selections: self.counters.selections.load(Ordering::Relaxed),
            clones: self.counters.clones.load(Ordering::Relaxed),
        })
    }

    /// Stops every thread and joins them.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EmuCluster {
    fn drop(&mut self) {
        self.stop();
    }
}

struct SwitchCtx {
    sw: SwitchId,
    rules: NetRsRules,
    selector: Option<Box<dyn ReplicaSelector + Send>>,
    topo: FatTree,
    ring: Arc<Ring>,
    server_host_of: Arc<HashMap<u32, u32>>,
    book: Arc<AddressBook>,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    epoch: Instant,
    /// Outstanding requests this RSNode selected for: request id →
    /// selection instant (the RV/retaining-value mechanism of §IV-A).
    pending: HashMap<u64, Instant>,
}

impl SwitchCtx {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Sends a frame one hop: to the next switch on its route, or to its
    /// destination host when the route is exhausted.
    fn emit(&self, socket: &UdpSocket, frame: &EmuFrame) {
        let target = match frame.route.first() {
            Some(&hop) => self.book.of_switch(SwitchId(u32::from(hop))),
            None => match self.book.host_addr.get(&frame.dst) {
                Some(&addr) => addr,
                None => return, // host unknown: drop
            },
        };
        let _ = socket.send_to(&frame.encode(), target);
        self.counters.forwarded.fetch_add(1, Ordering::Relaxed);
    }

    fn route_to_host(&self, dst: HostId, hash: u64) -> Vec<u16> {
        self.topo
            .path_switch_to_host(self.sw, dst, hash)
            .into_iter()
            .map(|s| s.0 as u16)
            .collect()
    }

    fn route_via_to_host(&self, via: SwitchId, dst: HostId, hash: u64) -> Vec<u16> {
        // From this switch, head to `via` is only precomputable when we
        // are the ingress ToR: path_via covers host→host; drop our own
        // leading entry.
        let src_host = self
            .topo
            .hosts_in_rack(self.sw.0)
            .next()
            .expect("tor has hosts");
        let full = self.topo.path_via(src_host, via, dst, hash);
        full.into_iter()
            .skip(1) // ourselves
            .map(|s| s.0 as u16)
            .collect()
    }
}

fn switch_loop(socket: UdpSocket, mut ctx: SwitchCtx) {
    let mut buf = vec![0u8; 65_536];
    while !ctx.shutdown.load(Ordering::SeqCst) {
        let (len, sender) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let Ok(mut frame) = EmuFrame::decode(&buf[..len]) else {
            continue;
        };
        // Pop ourselves off the source route.
        if frame.route.first() == Some(&(ctx.sw.0 as u16)) {
            frame.route.remove(0);
        }
        let from_host = ctx
            .book
            .host_addr
            .get(&frame.src)
            .is_some_and(|&a| a == sender);

        match classify(&frame.body) {
            PacketKind::NetRsRequest => handle_request(&socket, &mut ctx, frame, from_host),
            PacketKind::NetRsResponse => handle_response(&socket, &mut ctx, frame, from_host),
            _ => ctx.emit(&socket, &frame),
        }
    }
}

fn handle_request(socket: &UdpSocket, ctx: &mut SwitchCtx, mut frame: EmuFrame, from_host: bool) {
    let Ok((hdr, payload)) = RequestHeader::decode(&frame.body) else {
        return;
    };
    let mut meta = PacketMeta::Request {
        rid: hdr.rid,
        magic: hdr.magic,
        rgid: hdr.rgid.value(),
        src_host: frame.src,
        dst_host: frame.dst,
    };
    let action = ctx.rules.ingress(&mut meta, from_host);
    let PacketMeta::Request { rid, magic, .. } = meta else {
        unreachable!("request stays a request");
    };
    let rebuilt = RequestHeader {
        rid,
        magic,
        rv: hdr.rv,
        rgid: hdr.rgid,
    };
    frame.body = rebuilt.encode(&payload);

    match action {
        IngressAction::Forward => {
            // DRS (or already-demoted) request: straight to the backup.
            ctx.counters.drs.fetch_add(1, Ordering::Relaxed);
            if from_host {
                frame.route = ctx.route_to_host(HostId(frame.dst), frame.src.into());
            }
            ctx.emit(socket, &frame);
        }
        IngressAction::ForwardTowardRsnode(rid) => {
            if from_host {
                // We are the stamping ToR: lay the source route via the
                // RSNode's switch.
                let via = SwitchId(u32::from(rid.0) - 1);
                frame.route = ctx.route_via_to_host(via, HostId(frame.dst), u64::from(frame.src));
            }
            ctx.emit(socket, &frame);
        }
        IngressAction::ToAccelerator => {
            // We are the RSNode: run the selector and rebuild the packet.
            let now = ctx.now();
            let Some(selector) = ctx.selector.as_mut() else {
                return; // no selector deployed: drop (mirrors a fault)
            };
            let Some(replicas) = ctx.ring.groups().get(hdr.rgid.value()) else {
                return;
            };
            let target = selector.select(replicas, now);
            selector.on_send(target, now);
            ctx.counters.selections.fetch_add(1, Ordering::Relaxed);
            if payload.len() == 8 {
                let id = u64::from_be_bytes(payload[..8].try_into().expect("len checked"));
                ctx.pending.insert(id, Instant::now());
            }
            let target_host = ctx.server_host_of[&target.0];
            let rebuilt = RequestHeader {
                rid,
                magic: MagicField::RESPONSE.f(),
                rv: hdr.rv,
                rgid: hdr.rgid,
            };
            frame.dst = target_host;
            frame.body = rebuilt.encode(&payload);
            frame.route = ctx.route_to_host(HostId(target_host), u64::from(frame.src));
            ctx.emit(socket, &frame);
        }
        IngressAction::CloneToAcceleratorAndForward => unreachable!("requests are never cloned"),
    }
}

fn handle_response(socket: &UdpSocket, ctx: &mut SwitchCtx, mut frame: EmuFrame, from_host: bool) {
    let Ok((hdr, payload)) = ResponseHeader::decode(&frame.body) else {
        return;
    };
    let mut meta = PacketMeta::Response {
        rid: hdr.rid,
        magic: hdr.magic,
        sm: hdr.sm,
        src_host: frame.src,
        dst_host: frame.dst,
    };
    let action = ctx.rules.ingress(&mut meta, from_host);
    let PacketMeta::Response { magic, sm, .. } = meta else {
        unreachable!("response stays a response");
    };
    let rebuilt = ResponseHeader {
        rid: hdr.rid,
        magic,
        rv: hdr.rv,
        sm,
        status: hdr.status.clone(),
    };
    frame.body = rebuilt.encode(&payload);

    match action {
        IngressAction::ForwardTowardRsnode(rid) => {
            if from_host {
                let via = SwitchId(u32::from(rid.0) - 1);
                frame.route = ctx.route_via_to_host(via, HostId(frame.dst), u64::from(frame.src));
            }
            ctx.emit(socket, &frame);
        }
        IngressAction::CloneToAcceleratorAndForward => {
            // We are the RSNode: fold the clone into the selector, then
            // forward the (now M_mon) original.
            ctx.counters.clones.fetch_add(1, Ordering::Relaxed);
            let now = ctx.now();
            if let (Some(selector), Ok(status)) =
                (ctx.selector.as_mut(), ServerStatus::decode(&hdr.status))
            {
                let latency = payload
                    .get(..8)
                    .and_then(|b| b.try_into().ok())
                    .map(u64::from_be_bytes)
                    .and_then(|id| ctx.pending.remove(&id))
                    .map_or(SimDuration::ZERO, |t0| {
                        SimDuration::from_nanos(t0.elapsed().as_nanos() as u64)
                    });
                // Identify the server from the source marker's rack.
                let server = ctx
                    .server_host_of
                    .iter()
                    .find(|&(_, &h)| {
                        ctx.topo.rack_of_host(HostId(h)) == u32::from(sm.rack) && h == frame.src
                    })
                    .map(|(&sid, _)| ServerId(sid));
                if let Some(server) = server {
                    selector.on_response(
                        &Feedback {
                            server,
                            queue_len: status.queue_len,
                            service_time: status.service_time(),
                            latency,
                        },
                        now,
                    );
                }
            }
            if from_host {
                frame.route = ctx.route_to_host(HostId(frame.dst), u64::from(frame.src));
            }
            ctx.emit(socket, &frame);
        }
        IngressAction::Forward | IngressAction::ToAccelerator => {
            // Monitored/foreign responses just continue; ToRs stamped the
            // marker already inside `ingress`.
            if from_host && frame.route.is_empty() {
                frame.route = ctx.route_to_host(HostId(frame.dst), u64::from(frame.src));
            }
            ctx.emit(socket, &frame);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn server_loop(
    socket: UdpSocket,
    _sid: ServerId,
    host: HostId,
    topo: &FatTree,
    book: &AddressBook,
    shutdown: &AtomicBool,
    mean_service: Duration,
    rng: &mut SimRng,
) {
    let mut buf = vec![0u8; 65_536];
    let mut svc_ewma_ns = mean_service.as_nanos() as f64;
    let tor_addr = book.of_switch(topo.tor_of_host(host));
    while !shutdown.load(Ordering::SeqCst) {
        let (len, _) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let Ok(frame) = EmuFrame::decode(&buf[..len]) else {
            continue;
        };
        let Ok((req, payload)) = RequestHeader::decode(&frame.body) else {
            continue;
        };
        // Serve: exponential "storage access".
        let service = rng.exp(mean_service.as_nanos() as f64);
        std::thread::sleep(Duration::from_nanos(service as u64));
        svc_ewma_ns = 0.9 * svc_ewma_ns + 0.1 * service;

        // §IV-C: the response's magic is f⁻¹ of the request's.
        let response = ResponseHeader {
            rid: req.rid,
            magic: req.magic.f_inv(),
            rv: req.rv,
            sm: Default::default(), // stamped by our ToR
            status: ServerStatus {
                queue_len: 0,
                service_time_ns: svc_ewma_ns as u64,
            }
            .encode(),
        };
        let reply = EmuFrame {
            src: host.0,
            dst: frame.src,
            route: vec![],
            body: response.encode(&payload),
        };
        let _ = socket.send_to(&reply.encode(), tor_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_netrs_round_trip() {
        let cluster = EmuCluster::start(EmuConfig::default()).expect("bind loopback");
        assert!(cluster.rsnodes() >= 1);
        let report = cluster.run_workload(60).expect("workload");
        assert_eq!(report.completed, 60, "no UDP loss expected on loopback");
        assert_eq!(report.drs_responses, 0);
        assert!(report.selections >= 60, "every request passes a selector");
        assert!(report.clones >= 55, "responses are cloned at the RSNode");
        assert!(report.rtt.mean >= SimDuration::from_micros(50));
        cluster.shutdown();
    }

    #[test]
    fn drs_groups_bypass_selection() {
        let cfg = EmuConfig {
            // Force every group into DRS: all traffic takes the backup.
            drs_groups: (0..8).collect(),
            ..EmuConfig::default()
        };
        let cluster = EmuCluster::start(cfg).expect("bind loopback");
        let report = cluster.run_workload(40).expect("workload");
        assert_eq!(report.completed, 40);
        assert_eq!(
            report.drs_responses, 40,
            "all responses carry the illegal RID"
        );
        assert_eq!(report.selections, 0, "no selector ever ran");
        cluster.shutdown();
    }

    #[test]
    fn workload_is_spread_across_clients() {
        let cfg = EmuConfig {
            clients: 3,
            ..EmuConfig::default()
        };
        let cluster = EmuCluster::start(cfg).expect("bind loopback");
        let report = cluster.run_workload(30).expect("workload");
        assert_eq!(report.completed, 30);
        cluster.shutdown();
    }
}
