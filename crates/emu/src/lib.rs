//! NetRS over real UDP sockets.
//!
//! The simulator (`netrs-sim`) models time; this crate runs the *actual
//! protocol* end to end on loopback UDP: clients serialize byte-exact
//! NetRS requests ([`netrs_wire`]), software switches execute the
//! deployed [`netrs_netdev::NetRsRules`] ingress pipeline and steer
//! packets with SDN-style source routes over the fat-tree, the RSNode's
//! "accelerator" (a selector thread) rewrites requests with the replica
//! it chose, servers answer with piggybacked status, and responses flow
//! back through the RSNode — where they are cloned into the selector and
//! relabelled `M_mon` — to the client.
//!
//! This is the closest loopback-testable equivalent of the paper's
//! programmable-switch deployment: every header rewrite of §IV happens
//! on real packets, byte for byte. (Performance is *not* modelled here;
//! that is the simulator's job.)
//!
//! # Examples
//!
//! ```no_run
//! use netrs_emu::{EmuConfig, EmuCluster};
//!
//! let cluster = EmuCluster::start(EmuConfig::default())?;
//! let report = cluster.run_workload(200)?;
//! assert_eq!(report.completed, 200);
//! cluster.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frame;
mod node;

pub use frame::{EmuFrame, FrameError, MAX_ROUTE};
pub use node::{EmuCluster, EmuConfig, WorkloadReport};
