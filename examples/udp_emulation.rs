//! Run the NetRS protocol over real UDP sockets on loopback: byte-exact
//! packets through software switches executing the deployed NetRS rules,
//! replica selection at the RSNode, piggybacked status cloned back into
//! the selector.
//!
//! Run with:
//! ```text
//! cargo run --release --example udp_emulation
//! ```

use netrs_emu::{EmuCluster, EmuConfig};

fn main() -> std::io::Result<()> {
    let cfg = EmuConfig {
        clients: 3,
        servers: 4,
        ..EmuConfig::default()
    };
    println!(
        "starting loopback data center: 4-ary fat-tree, {} servers, {} clients",
        cfg.servers, cfg.clients
    );
    let cluster = EmuCluster::start(cfg)?;
    println!("deployed plan uses {} RSNode(s)\n", cluster.rsnodes());

    let report = cluster.run_workload(300)?;
    println!("requests sent      : {}", report.sent);
    println!("responses received : {}", report.completed);
    println!("selections at RSN  : {}", report.selections);
    println!("clones processed   : {}", report.clones);
    println!("DRS responses      : {}", report.drs_responses);
    println!("round-trip         : {}", report.rtt);

    cluster.shutdown();
    println!("\nclean shutdown.");
    Ok(())
}
