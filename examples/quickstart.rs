//! Quickstart: simulate a small key-value cluster under NetRS and print
//! the latency statistics the paper's figures report.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use netrs_sim::{run, Scheme, SimConfig};

fn main() {
    // A laptop-scale cluster: 4-ary fat-tree (16 hosts), 6 servers,
    // 8 clients. `SimConfig::paper()` gives the full §V-A setup instead.
    let mut cfg = SimConfig::small();
    cfg.requests = 50_000;
    cfg.scheme = Scheme::NetRsIlp;
    cfg.seed = 42;

    println!("scheme          : {}", cfg.scheme);
    println!("arrival rate    : {:.0} req/s", cfg.arrival_rate());
    let stats = run(cfg);

    println!(
        "requests        : {} issued, {} completed",
        stats.issued, stats.completed
    );
    println!(
        "RSNodes         : {} (core/agg/tor = {:?})",
        stats.rsnode_count, stats.rsnode_census
    );
    println!("mean latency    : {}", stats.latency.mean);
    println!("95th percentile : {}", stats.latency.p95);
    println!("99th percentile : {}", stats.latency.p99);
    println!("99.9th pct      : {}", stats.latency.p999);
    println!(
        "server util     : {:.1}%",
        stats.mean_server_utilization * 100.0
    );
    println!(
        "accel util      : {:.1}% mean, {:.1}% max",
        stats.mean_accel_utilization * 100.0,
        stats.max_accel_utilization * 100.0
    );
    println!(
        "events          : {} over {} simulated",
        stats.events, stats.sim_end
    );
}
