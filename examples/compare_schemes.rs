//! Compare all four replica-selection schemes of the paper (Fig. 4's
//! 500-client column, scaled down to run in seconds).
//!
//! Run with:
//! ```text
//! cargo run --release --example compare_schemes
//! ```

use netrs_sim::{run_all_schemes, RunStats, SimConfig};

fn main() {
    let mut cfg = SimConfig::small();
    cfg.arity = 8; // 128 hosts
    cfg.servers = 24;
    cfg.clients = 64;
    cfg.generators = 16;
    cfg.requests = 60_000;
    cfg.utilization = 0.9;

    println!(
        "comparing schemes: {} servers, {} clients, {:.0} req/s, {} requests\n",
        cfg.servers,
        cfg.clients,
        cfg.arrival_rate(),
        cfg.requests
    );
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "scheme", "mean(ms)", "p95(ms)", "p99(ms)", "p99.9", "rsnodes", "dups"
    );

    for (scheme, runs) in run_all_schemes(&cfg, &[1, 2, 3]) {
        let m = RunStats::mean_of(&runs);
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.1} {:>7.0}",
            scheme.label(),
            m.mean_ms,
            m.p95_ms,
            m.p99_ms,
            m.p999_ms,
            m.rsnodes,
            m.duplicates
        );
    }

    println!("\n(The paper's ordering: NetRS-ILP < NetRS-ToR < CliRS in latency,");
    println!(" with CliRS-R95 degrading at high utilization.)");
}
