//! Control-plane observability end to end: a NetRS-ILP run with the
//! monitored plan source, one operator failure and recovery, and the
//! `--control` audit stream attached — then the decision audit printed
//! the way `netrs-analyze control` renders it.
//!
//! Every line of the audit is causal, not sampled: the monitor windows
//! are the exact `TrafficSnapshot`s the controller aggregated, each
//! plan record is one controller decision with its solver effort and
//! plan diff, and each DRS span joins an operator-failure episode from
//! crash through detection to recovery with per-group displaced time.
//!
//! Run with:
//! ```text
//! cargo run --release --example control_plane
//! ```

use std::sync::{Arc, Mutex};

use netrs_sim::{
    run_observed, Cluster, ControlRecord, FaultEvent, FaultPlan, ObsOptions, PlanSource, Scheme,
    SimConfig, TimedFault,
};
use netrs_simcore::{Engine, SimDuration, SimTime};

/// A `Write` sink the example can read back after the run consumed the
/// box.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    let mut cfg = SimConfig::small();
    cfg.requests = 40_000;
    cfg.scheme = Scheme::NetRsIlp;
    cfg.plan_source = PlanSource::Monitored {
        interval: SimDuration::from_millis(400),
    };
    cfg.warmup_fraction = 0.0;
    cfg.seed = 7;

    // Fail an RSNode the *monitored* plan actually uses: probe a
    // fault-free run past the first re-plan (t=400ms) and pick the
    // first RSNode of the installed plan. Failing it at 600ms displaces
    // every group it serves into DRS, so the audit shows a real span.
    let victim = {
        let mut probe = Engine::new(Cluster::new(cfg.clone()));
        let mut queue = std::mem::take(probe.queue_mut());
        probe.world_mut().prime(&mut queue);
        *probe.queue_mut() = queue;
        probe.run_until(SimTime::from_nanos(500_000_000));
        probe
            .world()
            .current_plan()
            .expect("NetRS scheme has a plan")
            .rsnodes()
            .into_iter()
            .next()
            .expect("plan has RSNodes")
    };
    cfg.faults = Some(FaultPlan {
        events: vec![
            TimedFault {
                at: SimDuration::from_millis(600),
                fault: FaultEvent::OperatorFail { switch: victim.0 },
            },
            TimedFault {
                at: SimDuration::from_millis(1_400),
                fault: FaultEvent::OperatorRecover { switch: victim.0 },
            },
        ],
        ..FaultPlan::default()
    });
    cfg.validate().expect("valid control-plane config");

    let control = SharedBuf::default();
    let obs = ObsOptions {
        control: Some(Box::new(control.clone())),
        ..ObsOptions::default()
    };
    let out = run_observed(cfg, obs);

    let bytes = std::mem::take(&mut *control.0.lock().unwrap());
    let text = String::from_utf8(bytes).expect("control stream is UTF-8");
    let records: Vec<ControlRecord> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("control line parses"))
        .collect();

    println!(
        "run: {} completed, {} re-plans, victim switch {victim}",
        out.stats.completed, out.stats.replans
    );
    println!("\ndecision audit:");
    let mut snapshots_pending = 0usize;
    for rec in &records {
        match rec {
            ControlRecord::Snapshot(_) => snapshots_pending += 1,
            ControlRecord::Plan(p) => {
                if snapshots_pending > 0 {
                    println!("  ({snapshots_pending} monitor windows consumed)");
                    snapshots_pending = 0;
                }
                let switch = p
                    .switch
                    .map_or_else(String::new, |sw| format!(" switch {sw}"));
                let solve = match &p.solve {
                    Some(s) if s.greedy => " · greedy".to_string(),
                    Some(s) => format!(
                        " · ilp {} vars {} rows {} it {} nodes",
                        s.variables, s.constraints, s.lp_iterations, s.branch_nodes
                    ),
                    None => String::new(),
                };
                println!(
                    "  {:>9.3}ms  {:<16}{switch} · groups {}re/{}new/{}un · {} RSNodes · {} DRS · {} rules{solve}",
                    p.t_ns as f64 / 1e6,
                    p.trigger,
                    p.reassigned.len(),
                    p.newly_assigned.len(),
                    p.unassigned.len(),
                    p.rsnodes,
                    p.drs_groups,
                    p.rules_recompiled
                );
            }
            ControlRecord::DrsSpan(s) => {
                println!(
                    "  DRS span: switch {} fail {:.3}ms detect {} recover {} · displaced {:.3}ms over {} group(s)",
                    s.switch,
                    s.fail_ns as f64 / 1e6,
                    s.detect_ns
                        .map_or_else(|| "-".into(), |d| format!("{:.3}ms", d as f64 / 1e6)),
                    s.recover_ns
                        .map_or_else(|| "never".into(), |r| format!("{:.3}ms", r as f64 / 1e6)),
                    s.total_displaced_ns() as f64 / 1e6,
                    s.groups.len()
                );
            }
            ControlRecord::Cache(c) => {
                let switch = c
                    .switch
                    .map_or_else(|| "retired".into(), |sw| format!("switch {sw}"));
                println!(
                    "  cache audit: {switch} · {} resident · {} hits / {} misses · {} stale · {} evicted · {} invalidated",
                    c.len, c.hits, c.misses, c.stale_hits, c.evictions, c.invalidations
                );
            }
        }
    }
    let spans = records
        .iter()
        .filter(|r| matches!(r, ControlRecord::DrsSpan(_)))
        .count();
    assert!(spans > 0, "the failure episode must produce a DRS span");
}
