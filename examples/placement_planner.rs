//! Solve the RSNode placement ILP of §III-B at the paper's scale and
//! print the resulting Replica Selection Plan.
//!
//! This reproduces the paper's worked RSP example ("an RSP from NetRS-ILP
//! consists of 6 RSNodes on aggregation switches and 1 RSNode on a core
//! switch") under capacity settings that make aggregation placement
//! attractive, and shows how the plan shape responds to the constraints.
//!
//! Run with:
//! ```text
//! cargo run --release --example placement_planner
//! ```

use netrs::{PlacementProblem, PlanConstraints, PlanSolver, TrafficGroups, TrafficMatrix};
use netrs_simcore::SimRng;
use netrs_topology::{FatTree, HostId};

fn main() {
    // The paper's network: a 16-ary fat-tree with 1024 hosts; 100 servers
    // and 500 clients placed at random.
    let topo = FatTree::new(16).expect("even arity");
    let mut rng = SimRng::from_seed(2018);
    let picks = rng.sample_indices(topo.num_hosts() as usize, 600);
    let hosts: Vec<HostId> = picks.into_iter().map(|h| HostId(h as u32)).collect();
    let (server_hosts, client_hosts) = hosts.split_at(100);

    let groups = TrafficGroups::rack_level(&topo, client_hosts);
    // A = 90% utilization of 100 servers x 4 slots / 4ms = 90k req/s.
    let a = 90_000.0;
    let rates: Vec<(HostId, f64)> = client_hosts
        .iter()
        .map(|&h| (h, a / client_hosts.len() as f64))
        .collect();
    let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, server_hosts);

    println!(
        "topology: 16-ary fat-tree, {} switches, {} traffic groups, A = {:.0} req/s\n",
        topo.num_switches(),
        groups.len(),
        traffic.total()
    );

    let scenarios: [(&str, PlanConstraints); 3] = [
        (
            "paper constants (U=50%, E=20%A, dedicated accelerators)",
            PlanConstraints {
                extra_hop_budget: 0.2 * a,
                ..PlanConstraints::default()
            },
        ),
        ("shared accelerators (~15k tasks/s each), E=20%A", {
            let mut c = PlanConstraints {
                extra_hop_budget: 0.2 * a,
                ..PlanConstraints::default()
            };
            for sw in topo.switches() {
                c.capacity_overrides.insert(sw.0, 15_000.0);
            }
            c
        }),
        (
            "tight hop budget (E=2%A)",
            PlanConstraints {
                extra_hop_budget: 0.02 * a,
                ..PlanConstraints::default()
            },
        ),
    ];

    for (name, cons) in scenarios {
        let problem = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = problem.solve(PlanSolver::Auto { node_limit: 50 });
        let census = rsp.tier_census(&topo);
        println!("scenario: {name}");
        println!(
            "  RSNodes: {} total -> {} core, {} agg, {} tor{}",
            rsp.rsnodes().len(),
            census[0],
            census[1],
            census[2],
            if rsp.proven_optimal {
                " (proven optimal)"
            } else {
                " (anytime solution)"
            }
        );
        if !rsp.drs.is_empty() {
            println!(
                "  {} groups degraded to client-side backup (DRS)",
                rsp.drs.len()
            );
        }
        println!();
    }
}
