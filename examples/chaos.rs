//! Chaos run: a multi-fault plan layered over one NetRS-ToR experiment.
//!
//! An RSNode fail-stops, a storage server crashes and later recovers, a
//! core link degrades, and a packet-loss burst sweeps the fabric — all
//! from one declarative [`FaultPlan`]. The run prints the availability
//! outcome: how many requests timed out, how many retried their way to
//! an answer, and how long the cluster took to re-enter its
//! steady-state latency band.
//!
//! Run with: `cargo run --release --example chaos`

use netrs_sim::{run, Cluster, FaultEvent, FaultPlan, LinkRef, Scheme, SimConfig, TimedFault};
use netrs_simcore::SimDuration;

fn at(ms: u64, fault: FaultEvent) -> TimedFault {
    TimedFault {
        at: SimDuration::from_millis(ms),
        fault,
    }
}

fn main() {
    let mut cfg = SimConfig::small();
    cfg.scheme = Scheme::NetRsToR;
    cfg.requests = 20_000;
    cfg.seed = 42;

    // Pick the first RSNode of the plan this config installs, so the
    // operator fault hits a switch that actually runs a selector.
    let victim = Cluster::new(cfg.clone())
        .current_plan()
        .expect("NetRS scheme installs a plan")
        .rsnodes()
        .into_iter()
        .next()
        .expect("plan has RSNodes");

    cfg.faults = Some(FaultPlan {
        events: vec![
            at(100, FaultEvent::OperatorFail { switch: victim.0 }),
            at(200, FaultEvent::ServerCrash { server: 3 }),
            at(
                250,
                FaultEvent::LinkDegrade {
                    link: LinkRef::SwitchLink { a: 16, b: 18 },
                    factor: 6.0,
                },
            ),
            at(
                300,
                FaultEvent::PacketLossBurst {
                    probability: 0.15,
                    duration: SimDuration::from_millis(25),
                },
            ),
            at(400, FaultEvent::ServerRecover { server: 3 }),
            at(
                400,
                FaultEvent::LinkRecover {
                    link: LinkRef::SwitchLink { a: 16, b: 18 },
                },
            ),
            at(450, FaultEvent::OperatorRecover { switch: victim.0 }),
        ],
        ..FaultPlan::default()
    });
    cfg.validate().expect("valid chaos config");

    println!(
        "chaos plan: 7 faults against {:?}, RSNode victim {victim:?}",
        cfg.scheme
    );
    let stats = run(cfg);
    let avail = stats
        .availability
        .as_ref()
        .expect("active plan attaches availability stats");

    println!();
    println!(
        "issued {}  completed {}  (accounted: {})",
        stats.issued,
        stats.completed,
        stats.completed + avail.timeouts == stats.issued
    );
    println!("faults injected      {}", avail.faults_injected);
    println!("timeouts             {}", avail.timeouts);
    println!("retries              {}", avail.retries);
    println!("copies dropped       {}", avail.copies_dropped);
    println!("duplicate drops      {}", avail.duplicate_drops);
    println!("failed-window p99    {}", avail.failed_window_p99);
    match avail.time_to_recover {
        Some(t) => println!("time to recover      {t}"),
        None => println!("time to recover      never (run ended degraded)"),
    }
    println!();
    println!(
        "overall latency: mean {}  p99 {}",
        stats.latency.mean, stats.latency.p99
    );
}
