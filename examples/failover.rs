//! Exception handling (§III-C): fail a NetRS operator mid-run and watch
//! Degraded Replica Selection keep the store available.
//!
//! Run with:
//! ```text
//! cargo run --release --example failover
//! ```

use netrs_sim::{Cluster, Scheme, SimConfig};
use netrs_simcore::{Engine, SimDuration, SimTime};

fn main() {
    let mut cfg = SimConfig::small();
    cfg.requests = 40_000;
    cfg.scheme = Scheme::NetRsToR;
    cfg.seed = 11;

    let mut engine = Engine::new(Cluster::new(cfg));
    let mut queue = std::mem::take(engine.queue_mut());
    engine.world_mut().prime(&mut queue);
    *engine.queue_mut() = queue;

    // Let the system reach steady state, then kill one operator.
    let fail_at = SimTime::ZERO + SimDuration::from_millis(500);
    engine.run_until(fail_at);
    let before = engine.world().latency_histogram().summary();

    let victim = engine
        .world()
        .current_plan()
        .expect("NetRS scheme has a plan")
        .rsnodes()
        .into_iter()
        .next()
        .expect("plan has RSNodes");
    let affected = engine.world_mut().fail_operator(victim);
    println!(
        "t=500ms: operator at switch {victim} failed; {} traffic group(s) degraded to DRS",
        affected.len()
    );

    engine.run();
    let cluster = engine.into_world();
    let after = cluster.latency_histogram().summary();
    let plan = cluster.current_plan().expect("plan persists");

    println!("\nbefore failure : {before}");
    println!("whole run      : {after}");
    println!(
        "final plan     : {} RSNodes, {} DRS group(s)",
        plan.rsnodes().len(),
        plan.drs.len()
    );
    println!(
        "completed      : {}/{} requests (no request was lost)",
        cluster.completed(),
        cluster.issued()
    );
    assert_eq!(cluster.completed(), cluster.issued());
}
