//! Exception handling (§III-C): fail a NetRS operator mid-run and watch
//! the timeout/retry machinery plus Degraded Replica Selection keep the
//! store available.
//!
//! The failure is expressed as a declarative [`FaultPlan`] — the same
//! JSON-serializable timeline `simulate --faults` accepts — rather than
//! by poking the cluster mid-run, so the run stays a single
//! deterministic event stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example failover
//! ```

use netrs_sim::{run, Cluster, FaultEvent, FaultPlan, Scheme, SimConfig, TimedFault};
use netrs_simcore::SimDuration;

fn main() {
    let mut cfg = SimConfig::small();
    cfg.requests = 40_000;
    cfg.scheme = Scheme::NetRsToR;
    cfg.seed = 11;

    // Learn the victim from the plan this config installs: the first
    // RSNode, so the fault hits a switch that actually runs a selector.
    let victim = Cluster::new(cfg.clone())
        .current_plan()
        .expect("NetRS scheme has a plan")
        .rsnodes()
        .into_iter()
        .next()
        .expect("plan has RSNodes");

    // Baseline: the identical run without the fault.
    let baseline = run(cfg.clone());

    // Let the system reach steady state, then kill the operator.
    cfg.faults = Some(FaultPlan {
        events: vec![TimedFault {
            at: SimDuration::from_millis(500),
            fault: FaultEvent::OperatorFail { switch: victim.0 },
        }],
        ..FaultPlan::default()
    });
    cfg.validate().expect("valid failover config");
    let faulted = run(cfg);
    let avail = faulted
        .availability
        .as_ref()
        .expect("active plan attaches availability stats");

    println!("t=500ms: operator at switch {victim} fail-stops");
    println!("\nhealthy run : {}", baseline.latency);
    println!("faulted run : {}", faulted.latency);
    println!(
        "\ntimeouts {}  retries {}  copies dropped {}",
        avail.timeouts, avail.retries, avail.copies_dropped
    );
    println!("p99 during the failed window : {}", avail.failed_window_p99);
    match avail.time_to_recover {
        Some(t) => println!("time to recover              : {t}"),
        None => println!("time to recover              : never (run ended degraded)"),
    }
    println!(
        "\ncompleted {} + timed out {} = issued {} (no request was lost)",
        faulted.completed, avail.timeouts, faulted.issued
    );
    assert_eq!(faulted.completed + avail.timeouts, faulted.issued);
}
