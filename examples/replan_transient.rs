//! The re-planning transient of §II: "the deployment of a new RSP may
//! lead to a temporary latency increase" because newly introduced
//! RSNodes must rebuild their view of the system from scratch.
//!
//! This example runs NetRS with the monitored plan source and, via the
//! fault plan, fail-stops one RSNode at t=1.2s and recovers it at
//! t=2.0s — so the windowed latency trace shows *two* transients: the
//! scheduled ILP re-plan and the fault-driven DRS degradation plus
//! recovery. Instead of guessing where the control plane acted, the
//! example attaches a `--control`-style sink and annotates each window
//! with the controller decisions the audit stream recorded inside it.
//!
//! Run with:
//! ```text
//! cargo run --release --example replan_transient
//! ```

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use netrs_sim::{
    Cluster, ControlRecord, FaultEvent, FaultPlan, PlanSource, Scheme, SimConfig, TimedFault,
};
use netrs_simcore::{Engine, SimDuration, SimTime};

/// A `Write` sink the example can read back after the cluster consumed
/// the box.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    let mut cfg = SimConfig::small();
    cfg.arity = 8;
    cfg.servers = 24;
    cfg.clients = 64;
    cfg.generators = 16;
    cfg.requests = 80_000;
    cfg.scheme = Scheme::NetRsIlp;
    cfg.plan_source = PlanSource::Monitored {
        interval: SimDuration::from_millis(800),
    };
    cfg.warmup_fraction = 0.0;
    cfg.seed = 3;

    // Fault timeline: one RSNode of the plan *installed by the first
    // monitored re-plan* (probed from a fault-free run of the same
    // seed) dies after that re-plan and comes back 800 ms later — so
    // the groups it serves really do degrade to DRS in between.
    let victim = {
        // The probe must carry an (eventless) fault plan too: its retry
        // machinery is part of the event stream, and the probed run has
        // to match the real one exactly up to the fault.
        let mut probe_cfg = cfg.clone();
        probe_cfg.faults = Some(FaultPlan::default());
        let mut probe = Engine::new(Cluster::new(probe_cfg));
        let mut queue = std::mem::take(probe.queue_mut());
        probe.world_mut().prime(&mut queue);
        *probe.queue_mut() = queue;
        probe.run_until(SimTime::from_nanos(1_000_000_000));
        probe
            .world()
            .current_plan()
            .expect("NetRS scheme has a plan")
            .rsnodes()
            .into_iter()
            .next()
            .expect("plan has RSNodes")
    };
    cfg.faults = Some(FaultPlan {
        events: vec![
            TimedFault {
                at: SimDuration::from_millis(1_200),
                fault: FaultEvent::OperatorFail { switch: victim.0 },
            },
            TimedFault {
                at: SimDuration::from_millis(2_000),
                fault: FaultEvent::OperatorRecover { switch: victim.0 },
            },
        ],
        ..FaultPlan::default()
    });
    cfg.validate().expect("valid transient config");

    let control = SharedBuf::default();
    let mut cluster = Cluster::new(cfg);
    cluster.set_control(Box::new(control.clone()));
    let mut engine = Engine::new(cluster);
    let mut queue = std::mem::take(engine.queue_mut());
    engine.world_mut().prime(&mut queue);
    *engine.queue_mut() = queue;

    println!("RSNode victim: switch {victim}");
    println!("window(ms)  completed   mean(ms)   operators[core/agg/tor]");
    let window = SimDuration::from_millis(100);
    let mut t = SimTime::ZERO;
    let mut last_count = 0u64;
    let mut last_sum_ms = 0.0f64;
    let mut rows: Vec<(u64, u64, f64, [usize; 3])> = Vec::new();
    for i in 0..36 {
        t += window;
        engine.run_until(t);
        let hist = engine.world().latency_histogram();
        let count = hist.count();
        let sum_ms = hist.mean().as_millis_f64() * count as f64;
        let delta = count - last_count;
        let mean = if delta > 0 {
            (sum_ms - last_sum_ms) / delta as f64
        } else {
            0.0
        };
        rows.push(((i + 1) * 100, delta, mean, engine.world().operator_tiers()));
        last_count = count;
        last_sum_ms = sum_ms;
    }
    engine.run();
    let now = engine.now();
    let mut cluster = engine.into_world();
    cluster.flush_control(now);

    // The audit stream knows exactly when the control plane acted; use
    // it to annotate the windows instead of hard-coding event times.
    let bytes = std::mem::take(&mut *control.0.lock().unwrap());
    let text = String::from_utf8(bytes).expect("control stream is UTF-8");
    let records: Vec<ControlRecord> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("control line parses"))
        .collect();
    let plan_events: Vec<(u64, String)> = records
        .iter()
        .filter_map(|r| match r {
            ControlRecord::Plan(p) => Some((p.t_ns, p.trigger.clone())),
            _ => None,
        })
        .collect();

    for (end_ms, delta, mean, tiers) in rows {
        let start_ns = (end_ms - 100) * 1_000_000;
        let end_ns = end_ms * 1_000_000;
        let mut marker = String::new();
        for (t_ns, trigger) in &plan_events {
            if (start_ns..end_ns).contains(t_ns) {
                let _ = write!(marker, "  <- {trigger}");
            }
        }
        println!("{end_ms:>8}    {delta:>8}   {mean:>8.3}   {tiers:?}{marker}");
    }

    println!("\ncontroller decisions (from the control stream):");
    for (t_ns, trigger) in &plan_events {
        println!("  {:>10.3}ms  {trigger}", *t_ns as f64 / 1e6);
    }
    for rec in &records {
        if let ControlRecord::DrsSpan(s) = rec {
            println!(
                "DRS span: switch {} failed {:.3}ms, recovered {}, {} group(s) displaced {:.3}ms total",
                s.switch,
                s.fail_ns as f64 / 1e6,
                s.recover_ns
                    .map_or_else(|| "never".into(), |r| format!("{:.3}ms", r as f64 / 1e6)),
                s.groups.len(),
                s.total_displaced_ns() as f64 / 1e6
            );
        }
    }
    println!(
        "total: {}/{} completed; final operators by tier {:?}",
        cluster.completed(),
        cluster.issued(),
        cluster.operator_tiers()
    );
}
