//! The re-planning transient of §II: "the deployment of a new RSP may
//! lead to a temporary latency increase" because newly introduced
//! RSNodes must rebuild their view of the system from scratch.
//!
//! This example runs NetRS with the monitored plan source and, via the
//! fault plan, fail-stops one RSNode at t=1.2s and recovers it at
//! t=2.0s — so the windowed latency trace shows *two* transients: the
//! scheduled ILP re-plan and the fault-driven DRS degradation plus
//! recovery.
//!
//! Run with:
//! ```text
//! cargo run --release --example replan_transient
//! ```

use netrs_sim::{Cluster, FaultEvent, FaultPlan, PlanSource, Scheme, SimConfig, TimedFault};
use netrs_simcore::{Engine, SimDuration, SimTime};

fn main() {
    let mut cfg = SimConfig::small();
    cfg.arity = 8;
    cfg.servers = 24;
    cfg.clients = 64;
    cfg.generators = 16;
    cfg.requests = 80_000;
    cfg.scheme = Scheme::NetRsIlp;
    cfg.plan_source = PlanSource::Monitored {
        interval: SimDuration::from_millis(800),
    };
    cfg.warmup_fraction = 0.0;
    cfg.seed = 3;

    // Fault timeline: one RSNode of the bootstrap (ToR) plan dies after
    // the first re-plan and comes back 800 ms later.
    let victim = Cluster::new(cfg.clone())
        .current_plan()
        .expect("NetRS scheme has a plan")
        .rsnodes()
        .into_iter()
        .next()
        .expect("plan has RSNodes");
    cfg.faults = Some(FaultPlan {
        events: vec![
            TimedFault {
                at: SimDuration::from_millis(1_200),
                fault: FaultEvent::OperatorFail { switch: victim.0 },
            },
            TimedFault {
                at: SimDuration::from_millis(2_000),
                fault: FaultEvent::OperatorRecover { switch: victim.0 },
            },
        ],
        ..FaultPlan::default()
    });
    cfg.validate().expect("valid transient config");

    let mut engine = Engine::new(Cluster::new(cfg));
    let mut queue = std::mem::take(engine.queue_mut());
    engine.world_mut().prime(&mut queue);
    *engine.queue_mut() = queue;

    println!("RSNode victim: switch {victim}");
    println!("window(ms)  completed   mean(ms)   operators[core/agg/tor]");
    let window = SimDuration::from_millis(100);
    let mut t = SimTime::ZERO;
    let mut last_count = 0u64;
    let mut last_sum_ms = 0.0f64;
    for i in 0..36 {
        t += window;
        engine.run_until(t);
        let hist = engine.world().latency_histogram();
        let count = hist.count();
        let sum_ms = hist.mean().as_millis_f64() * count as f64;
        let delta = count - last_count;
        let mean = if delta > 0 {
            (sum_ms - last_sum_ms) / delta as f64
        } else {
            0.0
        };
        let tiers = engine.world().operator_tiers();
        let marker = match i {
            8 => "  <- first ILP re-plan near here",
            12 => "  <- RSNode fail-stop (DRS takes over)",
            20 => "  <- RSNode recovers",
            _ => "",
        };
        println!(
            "{:>8}    {:>8}   {:>8.3}   {:?}{}",
            (i + 1) * 100,
            delta,
            mean,
            tiers,
            marker
        );
        last_count = count;
        last_sum_ms = sum_ms;
    }
    engine.run();
    let cluster = engine.into_world();
    println!(
        "\ntotal: {}/{} completed; final operators by tier {:?}",
        cluster.completed(),
        cluster.issued(),
        cluster.operator_tiers()
    );
}
