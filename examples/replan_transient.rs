//! The re-planning transient of §II: "the deployment of a new RSP may
//! lead to a temporary latency increase" because newly introduced
//! RSNodes must rebuild their view of the system from scratch.
//!
//! This example runs NetRS with the monitored plan source (bootstrap on
//! the ToR plan, first ILP re-plan after one measurement window) and
//! prints the mean latency of each 100 ms window, so the transient
//! around the re-plan is visible.
//!
//! Run with:
//! ```text
//! cargo run --release --example replan_transient
//! ```

use netrs_sim::{Cluster, PlanSource, Scheme, SimConfig};
use netrs_simcore::{Engine, SimDuration, SimTime};

fn main() {
    let mut cfg = SimConfig::small();
    cfg.arity = 8;
    cfg.servers = 24;
    cfg.clients = 64;
    cfg.generators = 16;
    cfg.requests = 80_000;
    cfg.scheme = Scheme::NetRsIlp;
    cfg.plan_source = PlanSource::Monitored {
        interval: SimDuration::from_millis(800),
    };
    cfg.warmup_fraction = 0.0;
    cfg.seed = 3;

    let mut engine = Engine::new(Cluster::new(cfg));
    let mut queue = std::mem::take(engine.queue_mut());
    engine.world_mut().prime(&mut queue);
    *engine.queue_mut() = queue;

    println!("window(ms)  completed   mean(ms)   operators[core/agg/tor]");
    let window = SimDuration::from_millis(100);
    let mut t = SimTime::ZERO;
    let mut last_count = 0u64;
    let mut last_sum_ms = 0.0f64;
    for i in 0..36 {
        t += window;
        engine.run_until(t);
        let hist = engine.world().latency_histogram();
        let count = hist.count();
        let sum_ms = hist.mean().as_millis_f64() * count as f64;
        let delta = count - last_count;
        let mean = if delta > 0 {
            (sum_ms - last_sum_ms) / delta as f64
        } else {
            0.0
        };
        let tiers = engine.world().operator_tiers();
        let marker = if i == 8 {
            "  <- first ILP re-plan near here"
        } else {
            ""
        };
        println!(
            "{:>8}    {:>8}   {:>8.3}   {:?}{}",
            (i + 1) * 100,
            delta,
            mean,
            tiers,
            marker
        );
        last_count = count;
        last_sum_ms = sum_ms;
    }
    engine.run();
    let cluster = engine.into_world();
    println!(
        "\ntotal: {}/{} completed; final operators by tier {:?}",
        cluster.completed(),
        cluster.issued(),
        cluster.operator_tiers()
    );
}
