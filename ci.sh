#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::redundant_clone

echo "==> cargo test"
cargo test -q --workspace

echo "==> observability smoke (simulate + netrs-analyze)"
# NB: a --bin filter would apply across both -p flags and silently skip
# the netrs-analyze binary, leaving a stale copy in target/debug.
cargo build -q -p netrs-sim -p netrs-analyze
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
for scheme in clirs netrs-ilp; do
    ./target/debug/simulate --small --scheme "$scheme" --requests 5000 --seed 5 \
        --trace "$SMOKE/$scheme.jsonl" --trace-hops \
        --timeseries "$SMOKE/$scheme-ts.jsonl" \
        --devices "$SMOKE/$scheme-dev.jsonl" --json > "$SMOKE/$scheme-stats.json"
done
./target/debug/netrs-analyze report \
    --trace "clirs=$SMOKE/clirs.jsonl" --trace "netrs-ilp=$SMOKE/netrs-ilp.jsonl" \
    --devices "$SMOKE/netrs-ilp-dev.jsonl" --timeseries "$SMOKE/netrs-ilp-ts.jsonl" \
    --bench-json "$SMOKE/bench.json" --top 5 > "$SMOKE/report.txt"
grep -q "Per-phase latency comparison" "$SMOKE/report.txt"
./target/debug/netrs-analyze check-bench "$SMOKE/bench.json"

echo "==> determinism smoke (same seed, twice, byte-identical stats)"
for scheme in clirs-r95 netrs-tor; do
    ./target/debug/simulate --small --scheme "$scheme" --requests 5000 --seed 7 \
        --json > "$SMOKE/$scheme-det-a.json"
    ./target/debug/simulate --small --scheme "$scheme" --requests 5000 --seed 7 \
        --json > "$SMOKE/$scheme-det-b.json"
    diff -u "$SMOKE/$scheme-det-a.json" "$SMOKE/$scheme-det-b.json"
done

echo "==> control-plane smoke (deterministic stream, run unperturbed)"
./target/debug/simulate --small --scheme netrs-ilp --requests 5000 --seed 5 \
    --control "$SMOKE/ctl-a.jsonl" --json > "$SMOKE/ctl-stats-a.json"
./target/debug/simulate --small --scheme netrs-ilp --requests 5000 --seed 5 \
    --control "$SMOKE/ctl-b.jsonl" --json > "$SMOKE/ctl-stats-b.json"
# Same seed twice: the control stream must be byte-identical.
diff -u "$SMOKE/ctl-a.jsonl" "$SMOKE/ctl-b.jsonl"
# Without --control the run itself must not change: identical stats.
./target/debug/simulate --small --scheme netrs-ilp --requests 5000 --seed 5 \
    --json > "$SMOKE/ctl-stats-plain.json"
diff -u "$SMOKE/ctl-stats-a.json" "$SMOKE/ctl-stats-plain.json"
./target/debug/netrs-analyze control "netrs-ilp=$SMOKE/ctl-a.jsonl" \
    | grep -q "plan churn"

echo "==> perf smoke (tiny perf suite, artifact validates)"
# Runs the perf harness end to end at test scale and validates the
# artifact's shape. Deliberately no time gating: CI boxes are too noisy
# for that; real baselines are pinned in BENCH_PERF.json at the repo root.
cargo build -q -p netrs-bench --bin repro
./target/debug/repro perf --small --tag smoke --out "$SMOKE/perf.json"
# check-bench also runs the intra-artifact parallel gate (1-shard/1-thread
# dispatch vs the sequential baseline row); the wide threshold absorbs the
# wall-clock noise of tiny --small cells.
./target/debug/netrs-analyze check-bench "$SMOKE/perf.json" --threshold 0.5 \
    > "$SMOKE/perf-check.txt"
grep -q "versioned v1" "$SMOKE/perf-check.txt"
grep -q "parallel gate" "$SMOKE/perf-check.txt"
./target/debug/netrs-analyze perf "$SMOKE/perf.json" | grep -q "sharded-parallel grid"
# Two-artifact mode: an artifact never regresses against itself.
./target/debug/netrs-analyze check-bench "$SMOKE/perf.json" "$SMOKE/perf.json" \
    --threshold 0.05 | grep -q "Bench comparison"

echo "==> perf-profile smoke (simulate --perf, profiler must not perturb)"
# A profiled run must produce byte-identical stats to the plain run above
# and a schema-valid profile the analyzer can render.
./target/debug/simulate --small --scheme netrs-ilp --requests 5000 --seed 5 \
    --perf "$SMOKE/perf-profile.json" --json > "$SMOKE/perf-prof-stats.json"
diff -u "$SMOKE/ctl-stats-plain.json" "$SMOKE/perf-prof-stats.json"
grep -q '"schema_version": 1' "$SMOKE/perf-profile.json"
./target/debug/netrs-analyze check-bench "$SMOKE/perf-profile.json" | grep -q "versioned v1"
./target/debug/netrs-analyze perf "$SMOKE/perf-profile.json" | grep -q "by layer"
# The pinned repo baseline stays schema-valid too.
./target/debug/netrs-analyze check-bench BENCH_PERF.json | grep -q "versioned v1"

echo "==> shard-determinism smoke (1-shard == sequential, N-shard reproducible)"
# One shard through the ShardedEngine must be byte-identical to the
# sequential engine; four shards must at least be reproducible per seed.
./target/debug/simulate --small --scheme netrs-tor --requests 5000 --seed 7 \
    --json > "$SMOKE/shard-seq.json"
./target/debug/simulate --small --scheme netrs-tor --requests 5000 --seed 7 \
    --shards 1 --json > "$SMOKE/shard-one.json"
diff -u "$SMOKE/shard-seq.json" "$SMOKE/shard-one.json"
./target/debug/simulate --small --scheme netrs-tor --requests 5000 --seed 7 \
    --shards 4 --json > "$SMOKE/shard-four-a.json"
./target/debug/simulate --small --scheme netrs-tor --requests 5000 --seed 7 \
    --shards 4 --json > "$SMOKE/shard-four-b.json"
diff -u "$SMOKE/shard-four-a.json" "$SMOKE/shard-four-b.json"

echo "==> parallel-sweep smoke (grid artifact, renderer, cells match solo runs)"
# No wall-clock gating (CI boxes are too noisy and may be single-core);
# the measured speedup lands in the artifact for EXPERIMENTS.md instead.
./target/debug/simulate sweep --small --requests 5000 --seeds 5,7 --schemes all \
    --baseline --out "$SMOKE/sweep.json"
grep -q '"schema_version": 1' "$SMOKE/sweep.json"
grep -q '"speedup"' "$SMOKE/sweep.json"
./target/debug/netrs-analyze sweep "$SMOKE/sweep.json" > "$SMOKE/sweep.txt"
grep -q "## Sweep: 8 cells" "$SMOKE/sweep.txt"
grep -q "speedup" "$SMOKE/sweep.txt"
# A sweep cell is the same simulation as a solo run of the same config:
# the netrs-tor/seed-7 cell must carry the mean the sequential run above
# reported (sweep cells run the sequential engine at --shards 1).
mean_solo=$(grep -A 2 '"latency"' "$SMOKE/shard-seq.json" | grep '"mean"' | head -1 | tr -dc 0-9)
grep -q "\"mean\": $mean_solo" "$SMOKE/sweep.json"

echo "==> sharded perf smoke (simulate --shards --perf, artifact gates check-bench)"
./target/debug/simulate --small --scheme netrs-tor --requests 5000 --seed 7 \
    --shards 4 --perf "$SMOKE/perf-sharded.json" --json > "$SMOKE/shard-perf-stats.json"
# The profiler must not perturb the sharded run either.
diff -u "$SMOKE/shard-four-a.json" "$SMOKE/shard-perf-stats.json"
./target/debug/netrs-analyze check-bench "$SMOKE/perf-sharded.json" | grep -q "versioned v1"
./target/debug/netrs-analyze perf "$SMOKE/perf-sharded.json" | grep -q "by layer"

echo "==> parallel-determinism smoke (window driver reproducible, thread-invariant)"
# The parallel window driver must be reproducible per seed and its bytes
# must not depend on the worker count (nproc-aware: more workers where
# the box has the cores, but the T=1 diff is the real gate either way).
T=2
[ "$(nproc)" -ge 4 ] && T=4
./target/debug/simulate --small --scheme clirs --requests 5000 --seed 7 \
    --shards 4 --threads "$T" --json > "$SMOKE/par-a.json"
./target/debug/simulate --small --scheme clirs --requests 5000 --seed 7 \
    --shards 4 --threads "$T" --json > "$SMOKE/par-b.json"
diff -u "$SMOKE/par-a.json" "$SMOKE/par-b.json"
./target/debug/simulate --small --scheme clirs --requests 5000 --seed 7 \
    --shards 4 --threads 1 --json > "$SMOKE/par-one.json"
diff -u "$SMOKE/par-a.json" "$SMOKE/par-one.json"
grep -q '"parallel"' "$SMOKE/par-a.json"
grep -q '"mailbox_late": 0' "$SMOKE/par-a.json"

echo "==> alloc-profile feature (counting allocator, integration test)"
cargo test -q -p netrs-sim --features alloc-profile --test alloc_profile

echo "==> fault-injection smoke (scripted plan, same seed twice, byte-identical stats)"
for scheme in clirs netrs-tor; do
    ./target/debug/simulate --small --scheme "$scheme" --requests 5000 --seed 7 \
        --faults tests/fixtures/faults/smoke.json --json > "$SMOKE/$scheme-faults-a.json"
    ./target/debug/simulate --small --scheme "$scheme" --requests 5000 --seed 7 \
        --faults tests/fixtures/faults/smoke.json --json > "$SMOKE/$scheme-faults-b.json"
    diff -u "$SMOKE/$scheme-faults-a.json" "$SMOKE/$scheme-faults-b.json"
    grep -q '"availability"' "$SMOKE/$scheme-faults-a.json"
done
./target/debug/netrs-analyze availability \
    --stats "clirs=$SMOKE/clirs-faults-a.json" --stats "netrs-tor=$SMOKE/netrs-tor-faults-a.json" \
    | grep -q "Availability under faults"

echo "==> rw smoke (writes + hot-key cache, same seed twice, byte-identical stats)"
# Quorum writes and the in-switch cache must be as deterministic as the
# read path: identical seeds give identical stats including every cache
# counter, and the rw analyzer renders both runs.
for i in a b; do
    ./target/debug/simulate --small --scheme netrs-tor --requests 5000 --seed 9 \
        --write-fraction 0.1 --consistency quorum:2 --hot-cache 128 \
        --json > "$SMOKE/rw-$i.json"
done
diff -u "$SMOKE/rw-a.json" "$SMOKE/rw-b.json"
grep -q '"rw"' "$SMOKE/rw-a.json"
./target/debug/simulate --small --scheme netrs-tor --requests 5000 --seed 9 \
    --write-fraction 0.1 --consistency quorum:2 --hot-cache 128 \
    --devices "$SMOKE/rw-dev.jsonl" --json > /dev/null
./target/debug/netrs-analyze rw --stats "netrs-tor=$SMOKE/rw-a.json" \
    --devices "$SMOKE/rw-dev.jsonl" > "$SMOKE/rw-report.txt"
grep -q "Read/write mix" "$SMOKE/rw-report.txt"
grep -q "Per-operator cache" "$SMOKE/rw-report.txt"

echo "==> cache-invalidation-under-fault smoke (lost coherence => stale reads, deterministic)"
# Half the packets die mid-run: invalidations are lost with everything
# else, so stale reads must appear — and identically across two runs.
for i in a b; do
    ./target/debug/simulate --small --scheme netrs-tor --requests 5000 --seed 9 \
        --write-fraction 0.2 --hot-cache 128 \
        --faults tests/fixtures/faults/invalidation-loss.json \
        --json > "$SMOKE/rw-faults-$i.json"
done
diff -u "$SMOKE/rw-faults-a.json" "$SMOKE/rw-faults-b.json"
grep -q '"stale_reads"' "$SMOKE/rw-faults-a.json"

echo "==> CI green"
