#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> observability smoke (simulate + netrs-analyze)"
cargo build -q -p netrs-sim --bin simulate -p netrs-analyze
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
for scheme in clirs netrs-ilp; do
    ./target/debug/simulate --small --scheme "$scheme" --requests 5000 --seed 5 \
        --trace "$SMOKE/$scheme.jsonl" --trace-hops \
        --timeseries "$SMOKE/$scheme-ts.jsonl" \
        --devices "$SMOKE/$scheme-dev.jsonl" --json > "$SMOKE/$scheme-stats.json"
done
./target/debug/netrs-analyze report \
    --trace "clirs=$SMOKE/clirs.jsonl" --trace "netrs-ilp=$SMOKE/netrs-ilp.jsonl" \
    --devices "$SMOKE/netrs-ilp-dev.jsonl" --timeseries "$SMOKE/netrs-ilp-ts.jsonl" \
    --bench-json "$SMOKE/bench.json" --top 5 > "$SMOKE/report.txt"
grep -q "Per-phase latency comparison" "$SMOKE/report.txt"
./target/debug/netrs-analyze check-bench "$SMOKE/bench.json"

echo "==> determinism smoke (same seed, twice, byte-identical stats)"
for scheme in clirs-r95 netrs-tor; do
    ./target/debug/simulate --small --scheme "$scheme" --requests 5000 --seed 7 \
        --json > "$SMOKE/$scheme-det-a.json"
    ./target/debug/simulate --small --scheme "$scheme" --requests 5000 --seed 7 \
        --json > "$SMOKE/$scheme-det-b.json"
    diff -u "$SMOKE/$scheme-det-a.json" "$SMOKE/$scheme-det-b.json"
done

echo "==> CI green"
