#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> CI green"
