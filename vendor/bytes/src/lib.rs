//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: an immutable [`Bytes`]
//! buffer, a growable [`BytesMut`] builder, and the [`BufMut`] writer
//! trait with big-endian integer appends. Backed by plain `Vec<u8>`
//! (clones copy — fine for the packet sizes simulated here).

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Wraps a static byte string.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(iter.into_iter().collect())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.0 {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0 == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.0 == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0 == other
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn ser(&self) -> serde::Value {
        serde::Value::Arr(
            self.0
                .iter()
                .map(|&b| serde::Value::U(u128::from(b)))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn deser(v: &serde::Value) -> Result<Self, serde::DeError> {
        let bytes: Vec<u8> = serde::Deserialize::deser(v)?;
        Ok(Bytes(bytes))
    }
}

/// A growable byte buffer for building packets.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `cap` bytes reserved.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Big-endian append operations (the subset of the real `BufMut` used
/// for NetRS packet encoding).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends the low `nbytes` bytes of `v`, big-endian.
    fn put_uint(&mut self, v: u64, nbytes: usize);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_uint(&mut self, v: u64, nbytes: usize) {
        assert!(nbytes <= 8, "put_uint supports at most 8 bytes");
        self.0.extend_from_slice(&v.to_be_bytes()[8 - nbytes..]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_uint(&mut self, v: u64, nbytes: usize) {
        assert!(nbytes <= 8, "put_uint supports at most 8 bytes");
        self.extend_from_slice(&v.to_be_bytes()[8 - nbytes..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_is_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0x0102);
        b.put_u32(0x0304_0506);
        b.put_uint(0x0708_090A, 3);
        b.put_u8(0xFF);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4, 5, 6, 8, 9, 10, 0xFF]);
        assert_eq!(frozen.len(), 10);
    }

    #[test]
    fn bytes_constructors_agree() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::from_static(b"xy")[..], b"xy"[..]);
    }

    #[test]
    fn debug_escapes_bytes() {
        let b = Bytes::copy_from_slice(&[0x41, 0x00]);
        assert_eq!(format!("{b:?}"), "b\"A\\x00\"");
    }
}
