//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! a self-contained data model the workspace can serialize through: every
//! [`Serialize`] type lowers itself to a [`Value`] tree and every
//! [`Deserialize`] type rebuilds itself from one. `serde_json` (the
//! sibling stub) prints and parses `Value` as JSON text.
//!
//! The derive macros re-exported here (from `serde_derive`) generate the
//! same externally-tagged shapes real serde uses: named-field structs
//! become objects, newtype structs serialize as their inner value, unit
//! enum variants as strings, and data-carrying variants as single-key
//! objects.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped tree: the interchange format between `Serialize`,
/// `Deserialize` and the `serde_json` printer/parser.
///
/// Integers keep full `u128`/`i128` width so `SimTime` nanosecond values
/// round-trip exactly. Objects preserve insertion order (stable output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U(u128),
    /// A negative integer.
    I(i128),
    /// A float.
    F(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `name` in an object.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|entries| entries.iter().find(|(k, _)| k == name))
            .map(|(_, v)| v)
    }
}

/// Deserialization error: a message describing the shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Builds the `Value` tree for `self`.
    fn ser(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or reports the first shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `v` does not have the expected shape.
    fn deser(v: &Value) -> Result<Self, DeError>;
}

/// Finds a required struct field in an object's entries (derive helper).
///
/// # Errors
///
/// Returns [`DeError`] when `name` is absent.
pub fn field<'a>(
    entries: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}` for {ty}")))
}

impl Serialize for Value {
    fn ser(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deser(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom(format!("expected char, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                Value::U(*self as u128)
            }
        }

        impl Deserialize for $t {
            fn deser(v: &Value) -> Result<Self, DeError> {
                let n: u128 = match v {
                    Value::U(n) => *n,
                    Value::I(n) => u128::try_from(*n).map_err(|_| {
                        DeError::custom(format!(
                            "expected {}, got negative {n}", stringify!($t)
                        ))
                    })?,
                    // JSON object keys arrive as strings; integer map keys
                    // parse themselves back out.
                    Value::Str(s) => s.parse().map_err(|_| {
                        DeError::custom(format!(
                            "expected {}, got string {s:?}", stringify!($t)
                        ))
                    })?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected {}, got {other:?}", stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn ser(&self) -> Value {
        Value::U(*self)
    }
}

impl Deserialize for u128 {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U(n) => Ok(*n),
            Value::I(n) => {
                u128::try_from(*n).map_err(|_| DeError::custom(format!("negative {n} for u128")))
            }
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError::custom(format!("expected u128, got string {s:?}"))),
            other => Err(DeError::custom(format!("expected u128, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                let n = *self as i128;
                if n >= 0 {
                    Value::U(n as u128)
                } else {
                    Value::I(n)
                }
            }
        }

        impl Deserialize for $t {
            fn deser(v: &Value) -> Result<Self, DeError> {
                let n: i128 = match v {
                    Value::I(n) => *n,
                    Value::U(n) => i128::try_from(*n).map_err(|_| {
                        DeError::custom(format!(
                            "{n} out of range for {}", stringify!($t)
                        ))
                    })?,
                    Value::Str(s) => s.parse().map_err(|_| {
                        DeError::custom(format!(
                            "expected {}, got string {s:?}", stringify!($t)
                        ))
                    })?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected {}, got {other:?}", stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                Value::F(f64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn deser(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F(f) => Ok(*f as $t),
                    Value::U(n) => Ok(*n as $t),
                    Value::I(n) => Ok(*n as $t),
                    // Non-finite floats print as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        "expected {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(inner) => inner.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deser(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deser(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::deser)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::deser(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deser(v: &Value) -> Result<Self, DeError> {
        T::deser(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn ser(&self) -> Value {
                Value::Arr(vec![$(self.$idx.ser()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deser(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v
                    .as_arr()
                    .ok_or_else(|| DeError::custom(format!("expected tuple, got {v:?}")))?;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected tuple of {LEN}, got {}", items.len()
                    )));
                }
                Ok(($($name::deser(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Stringifies a serialized map key for use as a JSON object key.
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U(n) => n.to_string(),
        Value::I(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::F(f) => f.to_string(),
        other => format!("{other:?}"),
    }
}

macro_rules! impl_map {
    ($map:ident, $debounds:path) => {
        impl<K: Serialize, V: Serialize> Serialize for $map<K, V> {
            fn ser(&self) -> Value {
                Value::Obj(
                    self.iter()
                        .map(|(k, v)| (key_string(&k.ser()), v.ser()))
                        .collect(),
                )
            }
        }

        impl<K: Deserialize + $debounds, V: Deserialize> Deserialize for $map<K, V> {
            fn deser(v: &Value) -> Result<Self, DeError> {
                v.as_obj()
                    .ok_or_else(|| DeError::custom(format!("expected map, got {v:?}")))?
                    .iter()
                    .map(|(k, val)| Ok((K::deser(&Value::Str(k.clone()))?, V::deser(val)?)))
                    .collect()
            }
        }
    };
}

/// Bound alias for `HashMap` key deserialization.
pub trait HashKey: std::hash::Hash + Eq {}
impl<T: std::hash::Hash + Eq> HashKey for T {}

impl_map!(HashMap, HashKey);
impl_map!(BTreeMap, Ord);

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deser(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::custom(format!("expected set, got {v:?}")))?
            .iter()
            .map(T::deser)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn deser(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::custom(format!("expected set, got {v:?}")))?
            .iter()
            .map(T::deser)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deser(&42u64.ser()), Ok(42));
        assert_eq!(i32::deser(&(-7i32).ser()), Ok(-7));
        assert_eq!(bool::deser(&true.ser()), Ok(true));
        assert_eq!(String::deser(&"hi".to_string().ser()), Ok("hi".into()));
        assert_eq!(f64::deser(&1.5f64.ser()), Ok(1.5));
    }

    #[test]
    fn unsigned_range_checked() {
        assert!(u8::deser(&Value::U(300)).is_err());
        assert!(u32::deser(&Value::I(-1)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deser(&v.ser()), Ok(v));

        let arr = [5u8, 6, 7];
        assert_eq!(<[u8; 3]>::deser(&arr.ser()), Ok(arr));
        assert!(<[u8; 2]>::deser(&arr.ser()).is_err());

        let mut m = BTreeMap::new();
        m.insert(4u32, 0.5f64);
        m.insert(9u32, 1.5f64);
        assert_eq!(BTreeMap::<u32, f64>::deser(&m.ser()), Ok(m));
    }

    #[test]
    fn integer_map_keys_stringify() {
        let mut m = HashMap::new();
        m.insert(12u32, 3.0f64);
        let ser = m.ser();
        let entries = ser.as_obj().unwrap();
        assert_eq!(entries[0].0, "12");
        assert_eq!(HashMap::<u32, f64>::deser(&ser), Ok(m));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::deser(&Value::Null), Ok(None));
        assert_eq!(Some(3u32).ser(), Value::U(3));
        assert_eq!(Option::<u32>::deser(&Value::U(3)), Ok(Some(3)));
    }

    #[test]
    fn tuples_are_arrays() {
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::deser(&t.ser()), Ok(t));
    }
}
