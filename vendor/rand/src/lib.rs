//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API surface the workspace consumes:
//! [`rngs::SmallRng`], [`RngCore`], [`SeedableRng`] and the [`Rng`]
//! extension methods `gen::<f64>()` and `gen_range(low..high)`.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets), seeded through SplitMix64, so streams are
//! deterministic, well distributed and fast.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core random-bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from all bits ("standard" distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform draw from `[0, bound)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Widening-multiply method with rejection of the biased zone.
    let zone = bound.wrapping_neg() % bound; // 2^64 mod bound
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(bound);
        let lo = m as u64;
        if lo >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small, fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++: the small-footprint generator of the real `rand`'s
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_is_uniform_and_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.gen_range(0u64..10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(5usize..8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = rng.gen_range(5u64..5);
    }
}
