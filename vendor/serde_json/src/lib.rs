//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text over the sibling `serde` stub's
//! [`Value`] tree. Covers the API surface the workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`].
//!
//! Numbers keep 128-bit integer precision (nanosecond timestamps
//! round-trip exactly); floats print via Rust's shortest round-trip
//! `Display`. Non-finite floats print as `null` (JSON has no NaN) and
//! read back as NaN on the float side.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the stub's `Value` model; kept fallible to match the
/// real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the stub's `Value` model; kept fallible to match the
/// real crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deser(&value)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U(n) => out.push_str(&n.to_string()),
        Value::I(n) => out.push_str(&n.to_string()),
        Value::F(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (non-escape, non-quote) bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // crate's printer; reject rather than mangle.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u128>()
                .map(|n| Value::I(-(n as i128)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u128>()
                .map(Value::U)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Obj(vec![
            ("a".into(), Value::U(7)),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::F(1.25)),
            ("e".into(), Value::I(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Obj(vec![("k".into(), Value::Arr(vec![Value::U(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn big_integers_survive() {
        let n = u128::from(u64::MAX) + 5;
        let text = to_string(&Value::U(n)).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), Value::U(n));
    }

    #[test]
    fn floats_round_trip_shortest() {
        let f = 0.1 + 0.2;
        let text = to_string(&Value::F(f)).unwrap();
        match from_str::<Value>(&text).unwrap() {
            Value::F(back) => assert_eq!(back, f),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn nan_prints_null() {
        assert_eq!(to_string(&Value::F(f64::NAN)).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
    }
}
