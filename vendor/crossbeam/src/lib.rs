//! Offline stand-in for `crossbeam`.
//!
//! Provides only `crossbeam::thread::scope`, implemented over
//! `std::thread::scope` (stable since Rust 1.63, which postdates
//! crossbeam's scoped-thread API). The crossbeam flavor differs from
//! std's in two ways this shim papers over: spawned closures receive the
//! scope as an argument (enabling nested spawns), and `scope` returns a
//! `Result`.

#![forbid(unsafe_code)]

/// Scoped threads with the crossbeam calling convention.
pub mod thread {
    use std::any::Any;

    /// Panic payload of a joined thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle: spawns threads that may borrow from `'env`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (or its panic
        /// payload).
        ///
        /// # Errors
        ///
        /// Returns the panic payload when the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again, so it can spawn siblings (crossbeam's
        /// signature — hence `|_|` at most call sites here).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope whose threads all join before `scope`
    /// returns.
    ///
    /// # Errors
    ///
    /// The std backend propagates unjoined child panics by panicking,
    /// so this always returns `Ok`; the `Result` exists to match
    /// crossbeam's signature (call sites `.expect()` it).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3];
        let doubled = thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&n| scope.spawn(move |_| n * 2)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let total = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(total, 42);
    }

    #[test]
    fn join_surfaces_panics() {
        let res = thread::scope(|scope| {
            let h = scope.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .expect("scope");
        assert!(res.is_err());
    }
}
