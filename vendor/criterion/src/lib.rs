//! Offline stand-in for `criterion`.
//!
//! Keeps the harness API (`criterion_group!` / `criterion_main!`,
//! [`Criterion::bench_function`], benchmark groups with inputs) so the
//! workspace's `harness = false` bench targets compile and run without
//! crates.io. Statistics are deliberately simple: after a short warm-up
//! each benchmark reports the mean wall-clock time per iteration over a
//! fixed measurement window.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// Drives one benchmark's timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring in growing
    /// batches until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost for batching.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (WARMUP.as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Batch size targeting ~1ms per timing read, to keep clock
        // overhead negligible for nanosecond-scale routines.
        let batch = ((1_000_000.0 / est_ns).ceil() as u64).clamp(1, 1 << 20);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < MEASURE {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher) {
    let mean = b.mean_ns;
    let human = if mean >= 1_000_000.0 {
        format!("{:.3} ms", mean / 1_000_000.0)
    } else if mean >= 1_000.0 {
        format!("{:.3} µs", mean / 1_000.0)
    } else {
        format!("{mean:.1} ns")
    };
    println!("{name:<45} {human:>12}/iter   ({} iters)", b.iters);
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID from the parameter's display form (grouped benches).
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// An ID from a function name and a parameter.
    pub fn new(function: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", function.into()),
        }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's fixed measurement
    /// window ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
