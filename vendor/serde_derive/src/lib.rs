//! Derive macros for the offline `serde` stand-in.
//!
//! Parses the item declaration by walking `proc_macro::TokenTree`s
//! directly (the environment has no `syn`/`quote`), extracts the struct
//! or enum shape, and emits `Serialize`/`Deserialize` impls as formatted
//! source text parsed back into a `TokenStream`.
//!
//! Generated shapes mirror real serde's externally-tagged defaults:
//! named-field structs ↔ objects, newtype structs ↔ the inner value,
//! multi-field tuple structs ↔ arrays, unit enum variants ↔ strings,
//! data variants ↔ `{"Variant": payload}` single-key objects.
//!
//! Generics and `where` clauses are not supported (the workspace derives
//! only on concrete types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of one enum variant.
enum VariantShape {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with these field names.
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

/// A parsed derive input.
enum Input {
    UnitStruct {
        name: String,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips `#[...]` attribute groups at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skips `pub` / `pub(...)` at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Splits a field/variant list body on commas at angle-bracket depth 0.
/// Commas inside `(...)`/`[...]`/`{...}` never appear because groups are
/// single trees; only `<...>` needs explicit depth tracking.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts the field name from one named-field chunk
/// (`[attrs] [vis] name : ty`).
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    skip_attrs(chunk, &mut i);
    skip_vis(chunk, &mut i);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Parses one enum variant chunk
/// (`[attrs] Name [(..) | {..}] [= discriminant]`).
fn parse_variant(chunk: &[TokenTree]) -> Option<Variant> {
    let mut i = 0;
    skip_attrs(chunk, &mut i);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    i += 1;
    let shape = match chunk.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantShape::Tuple(split_top_commas(&inner).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let fields = split_top_commas(&inner)
                .iter()
                .filter_map(|c| field_name(c))
                .collect();
            VariantShape::Struct(fields)
        }
        // Bare name, or `Name = discriminant` (rest of chunk ignored).
        _ => VariantShape::Unit,
    };
    Some(Variant { name, shape })
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the serde stub"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let fields = split_top_commas(&inner)
                    .iter()
                    .filter_map(|c| field_name(c))
                    .collect();
                Ok(Input::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Input::TupleStruct {
                    name,
                    arity: split_top_commas(&inner).len(),
                })
            }
            _ => Ok(Input::UnitStruct { name }),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let variants = split_top_commas(&inner)
                    .iter()
                    .filter_map(|c| parse_variant(c))
                    .collect();
                Ok(Input::Enum { name, variants })
            }
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let code = match parsed {
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn ser(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn ser(&self) -> ::serde::Value {{ ::serde::Serialize::ser(&self.0) }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::ser(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Arr(vec![{}])\n\
                 }}\n}}",
                elems.join(", ")
            )
        }
        Input::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::ser(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Obj(vec![{}])\n\
                 }}\n}}",
                entries.join(",\n")
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Obj(vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::ser(__f0))])"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::ser(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Arr(vec![{}]))])",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::ser({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Obj(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n\
                 }}\n}}",
                arms.join(",\n")
            )
        }
    };
    code.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive generated invalid code: {e:?}")))
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let code = match parsed {
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deser(_v: &::serde::Value) -> \
             ::core::result::Result<Self, ::serde::DeError> {{\n\
             ::core::result::Result::Ok({name})\n\
             }}\n}}"
        ),
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deser(v: &::serde::Value) -> \
             ::core::result::Result<Self, ::serde::DeError> {{\n\
             ::core::result::Result::Ok({name}(::serde::Deserialize::deser(v)?))\n\
             }}\n}}"
        ),
        Input::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Deserialize::deser(&__items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deser(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 let __items = v.as_arr().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {arity} {{\n\
                 return ::core::result::Result::Err(::serde::DeError::custom(\
                 \"wrong tuple length for {name}\"));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}({}))\n\
                 }}\n}}",
                elems.join(", ")
            )
        }
        Input::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deser(\
                         ::serde::field(__entries, {f:?}, {name:?})?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deser(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 let __entries = v.as_obj().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n{}\n}})\n\
                 }}\n}}",
                inits.join(",\n")
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::core::result::Result::Ok({name}::{vname})")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deser(__payload)?))"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deser(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let __items = __payload.as_arr().ok_or_else(|| \
                                 ::serde::DeError::custom(\
                                 \"expected array for {name}::{vname}\"))?;\n\
                                 if __items.len() != {n} {{\n\
                                 return ::core::result::Result::Err(\
                                 ::serde::DeError::custom(\
                                 \"wrong tuple length for {name}::{vname}\"));\n\
                                 }}\n\
                                 ::core::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                elems.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deser(\
                                         ::serde::field(__fields, {f:?}, \
                                         \"{name}::{vname}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let __fields = __payload.as_obj().ok_or_else(|| \
                                 ::serde::DeError::custom(\
                                 \"expected object for {name}::{vname}\"))?;\n\
                                 ::core::result::Result::Ok({name}::{vname} {{\n{}\n}})\n\
                                 }}",
                                inits.join(",\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deser(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 __other => {{\n\
                 let __entries = __other.as_obj().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected variant for {name}\"))?;\n\
                 if __entries.len() != 1 {{\n\
                 return ::core::result::Result::Err(::serde::DeError::custom(\
                 \"expected single-key variant object for {name}\"));\n\
                 }}\n\
                 let (__tag, __payload) = (&__entries[0].0, &__entries[0].1);\n\
                 let _ = __payload;\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 __unknown => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__unknown}}` for {name}\"))),\n\
                 }}\n\
                 }}\n\
                 }}\n\
                 }}\n}}",
                if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
            )
        }
    };
    code.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive generated invalid code: {e:?}")))
}
