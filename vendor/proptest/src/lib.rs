//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, range and `any::<T>()` strategies,
//! `prop_map`/`prop_flat_map` combinators, tuple and
//! [`collection::vec`] strategies, [`prelude::Just`], [`prop_oneof!`],
//! and the `prop_assert*`/[`prop_assume!`] macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing input is reported as drawn.
//! Sampling is deterministic (fixed seed per test function), so failures
//! reproduce across runs.

#![forbid(unsafe_code)]

/// Deterministic random source for strategies.
pub mod test_runner {
    /// xoshiro256++ seeded from a fixed constant: every test function
    /// draws the same case sequence on every run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// The fixed-seed generator used by generated test functions.
        #[must_use]
        pub fn deterministic() -> Self {
            Self::from_seed(0x9E37_79B9_0BAD_CAFE)
        }

        /// A generator from an explicit seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw below `bound` (unbiased).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = bound.wrapping_neg() % bound;
            loop {
                let v = self.next_u64();
                let m = u128::from(v) * u128::from(bound);
                if (m as u64) >= zone {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases drawn per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // simulation properties fast while still exploring widely.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategies: value generators composable with map/flat-map.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A uniform union; `options` must be non-empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_ranges {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide - self.start as $wide) as u64;
                    (self.start as $wide + rng.below(span) as $wide) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $wide - lo as $wide) as u128 + 1;
                    if span > u128::from(u64::MAX) {
                        // Only reachable for u64/i64 full ranges: raw bits.
                        return rng.next_u64() as $t;
                    }
                    (lo as $wide + rng.below(span as u64) as $wide) as $t
                }
            }
        )*};
    }

    int_ranges!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u128, usize => u128,
        i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
    );

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    );

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with the given length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property-test functions: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

/// Internal: expands each test function inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // The closure gives `prop_assume!` an early-exit scope;
                // panics (prop_assert) propagate and fail the test with
                // the case number visible in the message below.
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body }),
                );
                if let ::std::result::Result::Err(__payload) = __outcome {
                    eprintln!(
                        "property `{}` failed on case {} of {} (panic above has details)",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (The stub counts skipped cases as passed rather than redrawing.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Wrapper(u16);

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            a in 3u32..17,
            b in -5i32..=5,
            f in 0.25f64..4.0,
            n in any::<u64>(),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..4.0).contains(&f));
            let _ = n;
        }

        #[test]
        fn vec_and_oneof_compose(
            items in collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..20),
            exact in collection::vec(any::<u8>(), 7usize),
            w in any::<[u8; 6]>().prop_map(|_| 0u8).prop_flat_map(|_| 0u16..4),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 20);
            prop_assert!(items.iter().all(|&x| x == 1 || x == 2));
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(w < 4);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_applies(x in any::<u16>().prop_map(Wrapper)) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut r1 = TestRng::deterministic();
        let mut r2 = TestRng::deterministic();
        let s = 0u64..1_000;
        for _ in 0..50 {
            assert_eq!(s.clone().sample(&mut r1), s.clone().sample(&mut r2));
        }
    }
}
