//! Integration tests of the placement stack: traffic measurement →
//! ILP → plan → deployed rules, against topologies of several sizes.

use std::collections::BTreeSet;

use netrs::{
    ControllerConfig, NetRsController, PlacementProblem, PlanConstraints, PlanSolver,
    TrafficGroups, TrafficMatrix,
};
use netrs_ilp::{solve_lp, LpStatus};
use netrs_simcore::SimRng;
use netrs_topology::{FatTree, HostId, Tier};

fn random_deployment(
    arity: u32,
    servers: usize,
    clients: usize,
    seed: u64,
) -> (FatTree, Vec<HostId>, Vec<HostId>) {
    let topo = FatTree::new(arity).unwrap();
    let mut rng = SimRng::from_seed(seed);
    let picks = rng.sample_indices(topo.num_hosts() as usize, servers + clients);
    let hosts: Vec<HostId> = picks.into_iter().map(|h| HostId(h as u32)).collect();
    let (s, c) = hosts.split_at(servers);
    (topo, s.to_vec(), c.to_vec())
}

#[test]
fn exact_plan_is_never_larger_than_greedy_across_seeds() {
    for seed in 0..5u64 {
        let (topo, servers, clients) = random_deployment(4, 5, 6, seed);
        let groups = TrafficGroups::rack_level(&topo, &clients);
        let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 200.0)).collect();
        let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);
        let mut cons = PlanConstraints::default();
        // Moderate capacity so consolidation is non-trivial.
        for sw in topo.switches() {
            cons.capacity_overrides.insert(sw.0, 900.0);
        }
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let greedy = p.solve_greedy();
        let exact = p.solve(PlanSolver::Exact { node_limit: 50_000 });
        assert!(exact.proven_optimal, "seed {seed}");
        assert!(
            exact.rsnodes().len() <= greedy.rsnodes().len(),
            "seed {seed}: exact {} > greedy {}",
            exact.rsnodes().len(),
            greedy.rsnodes().len()
        );
        // Both must satisfy the capacity constraint.
        for plan in [&greedy, &exact] {
            let mut load = std::collections::HashMap::new();
            for (&g, &sw) in &plan.assignment {
                *load.entry(sw).or_insert(0.0) += p.load_of(g);
            }
            for (sw, l) in load {
                assert!(
                    l <= p.capacity_of(sw) + 1e-6,
                    "seed {seed}: {sw} over capacity"
                );
            }
        }
    }
}

#[test]
fn plans_respect_the_hop_budget() {
    let (topo, servers, clients) = random_deployment(4, 5, 8, 3);
    let groups = TrafficGroups::rack_level(&topo, &clients);
    let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 300.0)).collect();
    let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);
    for budget in [0.0, 100.0, 5_000.0] {
        let cons = PlanConstraints {
            extra_hop_budget: budget,
            ..PlanConstraints::default()
        };
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        for solver in [PlanSolver::Greedy, PlanSolver::Exact { node_limit: 20_000 }] {
            let plan = p.solve(solver);
            let spent: f64 = plan
                .assignment
                .iter()
                .map(|(&g, &sw)| p.extra_hop_rate(g, sw))
                .sum();
            assert!(
                spent <= budget + 1e-6,
                "budget {budget}, solver {solver:?}: spent {spent}"
            );
        }
    }
}

#[test]
fn lp_relaxation_of_placement_is_feasible_and_bounds_plan_size() {
    let (topo, servers, clients) = random_deployment(8, 12, 24, 9);
    let groups = TrafficGroups::rack_level(&topo, &clients);
    let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 150.0)).collect();
    let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);
    let mut cons = PlanConstraints::default();
    for sw in topo.switches() {
        cons.capacity_overrides.insert(sw.0, 2_000.0);
    }
    let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
    let (ilp, _, _) = p.to_ilp(&BTreeSet::new());
    let lp = solve_lp(&ilp);
    assert_eq!(lp.status, LpStatus::Optimal);
    let plan = p.solve(PlanSolver::Auto { node_limit: 500 });
    assert!(plan.drs.is_empty());
    assert!(
        lp.objective <= plan.rsnodes().len() as f64 + 1e-6,
        "LP bound {} above plan size {}",
        lp.objective,
        plan.rsnodes().len()
    );
}

#[test]
fn monitored_traffic_agrees_with_oracle_shape() {
    // The oracle matrix and a matrix built from simulated monitor counts
    // must put each group's traffic in the same dominant tier.
    use netrs_netdev::Monitor;
    use netrs_wire::SourceMarker;

    let (topo, servers, clients) = random_deployment(4, 6, 4, 21);
    let groups = TrafficGroups::rack_level(&topo, &clients);
    let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 1_000.0)).collect();
    let oracle = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);

    // Simulate uniform responses from every server to every client.
    let controller = NetRsController::new(topo.clone(), ControllerConfig::default());
    let mut monitors: std::collections::HashMap<u32, Monitor> = groups
        .iter()
        .map(|info| {
            (
                info.tor.0,
                Monitor::new(controller.marker_of_rack(info.tor.0)),
            )
        })
        .collect();
    for info in groups.iter() {
        for &client in &info.hosts {
            let tor = topo.tor_of_host(client);
            for &server in &servers {
                let sm = SourceMarker {
                    pod: topo.pod_of_host(server) as u16,
                    rack: topo.rack_of_host(server) as u16,
                };
                for _ in 0..10 {
                    monitors.get_mut(&tor.0).unwrap().record(info.id, sm);
                }
            }
        }
    }
    let snaps: Vec<_> = monitors
        .values_mut()
        .map(|m| m.snapshot(netrs_simcore::SimTime::from_nanos(1_000_000_000)))
        .collect();
    let measured = TrafficMatrix::from_snapshots(groups.len(), &snaps);

    for g in 0..groups.len() as u32 {
        let o = oracle.tier_rates(g);
        let m = measured.tier_rates(g);
        let dominant = |r: [f64; 3]| {
            (0..3)
                .max_by(|&a, &b| r[a].partial_cmp(&r[b]).unwrap())
                .unwrap()
        };
        assert_eq!(
            dominant(o),
            dominant(m),
            "group {g}: oracle {o:?} vs measured {m:?}"
        );
    }
}

#[test]
fn deployed_rules_route_every_group_to_a_live_operator() {
    let (topo, servers, clients) = random_deployment(8, 10, 30, 4);
    let groups = TrafficGroups::rack_level(&topo, &clients);
    let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 100.0)).collect();
    let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);
    let mut controller = NetRsController::new(topo.clone(), ControllerConfig::default());
    let plan = controller
        .plan(&groups, &traffic, PlanSolver::Auto { node_limit: 100 })
        .clone();
    let rules = controller.deploy(&groups);
    for info in groups.iter() {
        let tor = rules[&info.tor].tor.as_ref().expect("tor rules");
        let rid = tor.rsnode_of_group[&info.id];
        let sw = controller.switch_of_rsnode(rid).expect("legal id");
        assert_eq!(plan.assignment[&info.id], sw);
        // Candidate legality (the R matrix): the RSNode is the group's
        // ToR, an agg of its pod, or a core switch.
        match topo.tier(sw) {
            Tier::Tor => assert_eq!(sw, info.tor),
            Tier::Agg => assert_eq!(topo.pod_of_switch(sw), topo.pod_of_switch(info.tor)),
            Tier::Core => {}
        }
    }
}
