//! Fault-injection subsystem integration tests (ISSUE 4).
//!
//! Pins the three contracts the subsystem makes:
//!
//! * **Zero-cost when inactive** — a run with an empty fault plan is
//!   byte-identical to a run with no plan at all, for every scheme.
//! * **Determinism** — the same plan under the same seed reproduces the
//!   same stats JSON, byte for byte.
//! * **No silently lost requests** — under any combination of crashes,
//!   link failures, operator fail-stops and packet loss, every issued
//!   request either completes (possibly after retries) or is counted as
//!   a timeout: `completed + timeouts == issued`.

use netrs_sim::{run, Cluster, FaultEvent, FaultPlan, LinkRef, Scheme, SimConfig, TimedFault};
use netrs_simcore::SimDuration;
use proptest::prelude::*;

fn base(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.requests = 6_000;
    cfg.scheme = scheme;
    cfg.seed = 42;
    cfg
}

fn at(ms: u64, fault: FaultEvent) -> TimedFault {
    TimedFault {
        at: SimDuration::from_millis(ms),
        fault,
    }
}

fn stats_json(cfg: SimConfig) -> String {
    serde_json::to_string_pretty(&run(cfg)).expect("stats serialize")
}

/// The accounting invariant every fault run must satisfy.
fn assert_accounted(stats: &netrs_sim::RunStats) {
    let avail = stats
        .availability
        .as_ref()
        .expect("active plan attaches availability");
    assert_eq!(
        stats.completed + avail.timeouts,
        stats.issued,
        "requests were silently lost: {} completed + {} timed out != {} issued",
        stats.completed,
        avail.timeouts,
        stats.issued
    );
}

/// An empty (event-less) plan must leave the run byte-identical to a run
/// with no plan at all: no timeout machinery, no extra events, no
/// `availability` block in the JSON.
#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    for scheme in Scheme::ALL {
        let without = stats_json(base(scheme));
        let mut cfg = base(scheme);
        cfg.faults = Some(FaultPlan::default());
        let with_empty = stats_json(cfg);
        assert_eq!(
            without, with_empty,
            "{scheme:?}: an empty fault plan perturbed the run"
        );
        assert!(
            !without.contains("availability"),
            "{scheme:?}: fault-free stats must omit the availability block"
        );
    }
}

/// The same plan under the same seed is deterministic, byte for byte.
#[test]
fn fault_runs_are_deterministic_per_seed() {
    let plan = FaultPlan {
        events: vec![
            at(50, FaultEvent::ServerCrash { server: 2 }),
            at(90, FaultEvent::ServerRecover { server: 2 }),
            at(
                120,
                FaultEvent::PacketLossBurst {
                    probability: 0.2,
                    duration: SimDuration::from_millis(20),
                },
            ),
        ],
        ..FaultPlan::default()
    };
    for scheme in [Scheme::CliRs, Scheme::NetRsToR] {
        let mut cfg = base(scheme);
        cfg.faults = Some(plan.clone());
        let a = stats_json(cfg.clone());
        let b = stats_json(cfg);
        assert_eq!(a, b, "{scheme:?}: same seed, same plan, different bytes");
    }
}

/// The ISSUE acceptance scenario: crash one RSNode under NetRS-ToR.
/// Steered packets blackhole until detection; clients time out and
/// retry; the run must re-stabilize and account for every request.
#[test]
fn rsnode_crash_under_netrs_tor_recovers() {
    let cfg = base(Scheme::NetRsToR);
    // Learn a deterministic victim from the installed plan.
    let victim = Cluster::new(cfg.clone())
        .current_plan()
        .expect("NetRS scheme has a plan")
        .rsnodes()
        .into_iter()
        .next()
        .expect("plan has RSNodes");
    let mut cfg = cfg;
    cfg.faults = Some(FaultPlan {
        events: vec![at(100, FaultEvent::OperatorFail { switch: victim.0 })],
        // A sluggish failure detector stretches the blackhole window so
        // a measurable number of steered packets is lost.
        detection_delay: SimDuration::from_millis(10),
        ..FaultPlan::default()
    });
    let stats = run(cfg);
    assert_accounted(&stats);
    let avail = stats.availability.as_ref().unwrap();
    assert_eq!(avail.faults_injected, 1);
    assert!(
        avail.timeouts + avail.retries > 0,
        "blackholed packets must surface as timeouts or retries: {avail:?}"
    );
    assert!(
        avail.copies_dropped > 0,
        "packets steered at the dead operator must be dropped: {avail:?}"
    );
    assert!(
        avail.time_to_recover.is_some(),
        "the run must re-enter the steady-state band: {avail:?}"
    );
}

/// A crashed operator that later recovers rejoins the plan with a fresh
/// selector; the run still accounts for every request.
#[test]
fn rsnode_crash_and_recovery_restores_the_operator() {
    let cfg = base(Scheme::NetRsToR);
    let victim = Cluster::new(cfg.clone())
        .current_plan()
        .expect("NetRS scheme has a plan")
        .rsnodes()
        .into_iter()
        .next()
        .expect("plan has RSNodes");
    let mut cfg = cfg;
    cfg.faults = Some(FaultPlan {
        events: vec![
            at(60, FaultEvent::OperatorFail { switch: victim.0 }),
            at(110, FaultEvent::OperatorRecover { switch: victim.0 }),
        ],
        ..FaultPlan::default()
    });
    let stats = run(cfg);
    assert_accounted(&stats);
    assert_eq!(stats.availability.as_ref().unwrap().faults_injected, 2);
    assert_eq!(
        stats.drs_groups, 0,
        "recovery must restore the operator's traffic groups from DRS"
    );
}

/// A server crash mid-run: queued and in-service copies are lost, the
/// timeout machinery retries reads elsewhere, and a later recovery lets
/// the server serve again.
#[test]
fn server_crash_and_recovery_accounts_for_every_request() {
    for scheme in Scheme::ALL {
        let mut cfg = base(scheme);
        cfg.write_fraction = 0.1; // writes exercise the abandon path
        cfg.faults = Some(FaultPlan {
            events: vec![
                at(40, FaultEvent::ServerCrash { server: 0 }),
                at(120, FaultEvent::ServerRecover { server: 0 }),
            ],
            ..FaultPlan::default()
        });
        let stats = run(cfg);
        assert_accounted(&stats);
        let avail = stats.availability.as_ref().unwrap();
        assert!(
            avail.copies_dropped > 0,
            "{scheme:?}: copies at the crashed server must be dropped: {avail:?}"
        );
    }
}

/// Total partition: every host uplink goes dark for 30 ms. Nothing can
/// be sent or delivered; retries after the window drain the backlog and
/// the accounting still balances.
#[test]
fn transient_partition_of_all_uplinks_is_survived() {
    let hosts = 4 * 4 * 4 / 4; // arity-4 fat tree
    let mut events: Vec<TimedFault> = (0..hosts)
        .map(|h| {
            at(
                30,
                FaultEvent::LinkFail {
                    link: LinkRef::HostUplink { host: h },
                },
            )
        })
        .collect();
    events.extend((0..hosts).map(|h| {
        at(
            60,
            FaultEvent::LinkRecover {
                link: LinkRef::HostUplink { host: h },
            },
        )
    }));
    let mut cfg = base(Scheme::CliRs);
    cfg.faults = Some(FaultPlan {
        events,
        ..FaultPlan::default()
    });
    let stats = run(cfg);
    assert_accounted(&stats);
    let avail = stats.availability.as_ref().unwrap();
    assert!(
        avail.copies_dropped > 0,
        "partitioned sends must be dropped: {avail:?}"
    );
    assert!(
        avail.retries > 0,
        "requests caught in the partition must retry: {avail:?}"
    );
}

/// A degraded link stretches latency without losing packets; a slowdown
/// stretches service times. Both must keep the accounting exact.
#[test]
fn degradations_disturb_latency_but_lose_nothing() {
    let mut cfg = base(Scheme::NetRsToR);
    cfg.faults = Some(FaultPlan {
        events: vec![
            at(
                30,
                FaultEvent::ServerSlowdown {
                    server: 1,
                    factor: 0.25,
                },
            ),
            at(
                60,
                FaultEvent::LinkDegrade {
                    link: LinkRef::SwitchLink { a: 16, b: 18 },
                    factor: 8.0,
                },
            ),
            at(
                110,
                FaultEvent::ServerSlowdown {
                    server: 1,
                    factor: 1.0,
                },
            ),
            at(
                110,
                FaultEvent::LinkRecover {
                    link: LinkRef::SwitchLink { a: 16, b: 18 },
                },
            ),
        ],
        ..FaultPlan::default()
    });
    let stats = run(cfg);
    assert_accounted(&stats);
    assert_eq!(stats.availability.as_ref().unwrap().faults_injected, 4);
}

/// Client-side schemes have no in-network operators to fail; the facade
/// reports that as an error instead of panicking (it used to panic).
#[test]
fn failing_an_operator_on_client_schemes_is_an_error_not_a_panic() {
    use netrs_sim::NotInNetwork;
    use netrs_topology::SwitchId;
    for scheme in [Scheme::CliRs, Scheme::CliRsR95] {
        let mut cluster = Cluster::new(base(scheme));
        assert_eq!(cluster.fail_operator(SwitchId(16)), Err(NotInNetwork));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: under a chaotic plan (server crash, operator fail-stop,
    /// packet loss) no request is ever silently lost, for any scheme and
    /// seed: every issued request completes or is a counted timeout.
    #[test]
    fn no_request_is_silently_lost(seed in 0u64..1_000, scheme_idx in 0usize..4, loss in 0.05f64..0.4) {
        let scheme = Scheme::ALL[scheme_idx];
        let mut cfg = base(scheme);
        cfg.requests = 2_500;
        cfg.seed = seed;
        cfg.write_fraction = 0.1;
        cfg.faults = Some(FaultPlan {
            events: vec![
                at(20, FaultEvent::ServerCrash { server: (seed % 6) as u32 }),
                at(35, FaultEvent::OperatorFail { switch: (seed % 20) as u32 }),
                at(50, FaultEvent::PacketLossBurst {
                    probability: loss,
                    duration: SimDuration::from_millis(15),
                }),
            ],
            ..FaultPlan::default()
        });
        let stats = run(cfg);
        let avail = stats.availability.as_ref().expect("active plan");
        prop_assert_eq!(stats.completed + avail.timeouts, stats.issued);
    }
}
