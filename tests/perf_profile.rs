//! Host-performance profiler integration tests: kind-count accounting,
//! coverage, determinism of everything deterministic, and schema shape.

use proptest::prelude::*;

use netrs_sim::{run_observed, HostProfile, ObsOptions, PerfOptions, Scheme, SimConfig};

fn tiny(scheme: Scheme, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.requests = 2_000;
    cfg.scheme = scheme;
    cfg.seed = seed;
    cfg
}

fn profiled(cfg: SimConfig, stride: u32) -> (netrs_sim::RunOutput, HostProfile) {
    let obs = ObsOptions {
        perf: Some(PerfOptions { stride }),
        ..ObsOptions::default()
    };
    let mut out = run_observed(cfg, obs);
    let perf = out.perf.take().expect("perf profile requested");
    (out, perf)
}

#[test]
fn kind_counts_sum_to_total_events_for_all_four_schemes() {
    for scheme in Scheme::ALL {
        let (out, perf) = profiled(tiny(scheme, 42), 7);
        assert_eq!(
            perf.kind_count_sum(),
            out.stats.events,
            "{scheme:?}: every processed event must land in exactly one kind bucket"
        );
        assert_eq!(perf.events, out.stats.events);
        // Queue accounting: every event processed was popped, and the
        // run drained (pushes == pops at the end).
        assert_eq!(perf.queue.pops, out.stats.events);
        assert_eq!(perf.queue.pushes, perf.queue.pops);
        // The depth histogram also saw every event.
        assert_eq!(
            perf.queue.depth_hist.iter().sum::<u64>(),
            out.stats.events,
            "{scheme:?}"
        );
        // Layer tags come from the fixed table.
        for k in &perf.kinds {
            assert!(
                matches!(k.layer.as_str(), "state" | "policy" | "server" | "fabric"),
                "{scheme:?}: unknown layer {:?}",
                k.layer
            );
        }
        // Scheme-specific kinds show up where expected.
        let count = |name: &str| {
            perf.kinds
                .iter()
                .find(|k| k.kind == name)
                .map_or(0, |k| k.count)
        };
        assert!(count("Generate") >= 2_000, "{scheme:?}");
        assert!(count("ServerDone") > 0, "{scheme:?}");
        match scheme {
            Scheme::CliRs | Scheme::CliRsR95 => assert_eq!(count("Select"), 0, "{scheme:?}"),
            Scheme::NetRsToR | Scheme::NetRsIlp => assert!(count("Select") > 0, "{scheme:?}"),
        }
    }
}

#[test]
fn stride_one_attribution_covers_most_of_wall_clock() {
    // With stride 1 every step is timed, so the summed self-times must
    // account for nearly all of the run loop. The acceptance bar is 90%
    // at bench scale; at test scale (where setup is a larger share of
    // wall) we still demand a substantial majority.
    let mut cfg = tiny(Scheme::NetRsIlp, 42);
    cfg.requests = 10_000;
    let (_, perf) = profiled(cfg, 1);
    let wall_ns = perf.wall_s * 1e9;
    assert!(perf.attributed_ns > 0);
    let coverage = perf.attributed_ns as f64 / wall_ns;
    assert!(
        coverage > 0.5,
        "stride-1 attribution covered only {:.1}% of wall",
        coverage * 100.0
    );
    // Sanity: attribution cannot exceed wall by more than measurement
    // jitter.
    assert!(
        coverage < 1.5,
        "attribution {:.1}% > wall",
        coverage * 100.0
    );
}

#[test]
fn profiler_observes_without_perturbing_the_run() {
    for scheme in Scheme::ALL {
        let plain = netrs_sim::run(tiny(scheme, 9));
        let (out, _) = profiled(tiny(scheme, 9), 3);
        assert_eq!(
            serde_json::to_string_pretty(&out.stats).unwrap(),
            serde_json::to_string_pretty(&plain).unwrap(),
            "{scheme:?}: profiled run diverged from plain run"
        );
    }
}

#[test]
fn deterministic_fields_are_stable_across_repeat_runs() {
    let (_, a) = profiled(tiny(Scheme::NetRsToR, 5), 7);
    let (_, b) = profiled(tiny(Scheme::NetRsToR, 5), 7);
    // Wall-clock numbers differ run to run; everything simulated or
    // counted must not.
    let counts = |p: &HostProfile| -> Vec<(String, u64, u64)> {
        p.kinds
            .iter()
            .map(|k| (k.kind.clone(), k.count, k.sampled))
            .collect()
    };
    assert_eq!(counts(&a), counts(&b));
    assert_eq!(a.queue, b.queue);
    assert_eq!(a.events, b.events);
    assert_eq!((a.seed, a.requests), (b.seed, b.requests));
}

#[test]
fn emitted_profile_carries_schema_version_and_host_metadata() {
    let (_, perf) = profiled(tiny(Scheme::CliRs, 1), 7);
    assert_eq!(perf.schema_version, netrs_sim::PERF_SCHEMA_VERSION);
    assert_eq!(perf.scheme, "CliRS");
    assert_eq!(perf.label, "CliRS");
    assert!(!perf.host.commit.is_empty());
    assert!(!perf.host.cpu.is_empty());
    let json = serde_json::to_string(&perf).unwrap();
    assert!(json.contains("\"schema_version\":1"), "{json}");
    assert!(json.contains("\"host\""), "{json}");
    // Round-trips through the artifact model.
    let back: HostProfile = serde_json::from_str(&json).unwrap();
    assert_eq!(back, perf);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The accounting invariant under arbitrary seeds, strides and
    /// schemes: counts partition the event stream exactly.
    #[test]
    fn prop_kind_counts_partition_events(
        seed in 1u64..1_000,
        stride in 1u32..32,
        scheme_idx in 0usize..4,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let mut cfg = SimConfig::small();
        cfg.requests = 500;
        cfg.scheme = scheme;
        cfg.seed = seed;
        let (out, perf) = profiled(cfg, stride);
        prop_assert_eq!(perf.kind_count_sum(), out.stats.events);
        prop_assert_eq!(perf.queue.pops, out.stats.events);
        let sampled: u64 = perf.kinds.iter().map(|k| k.sampled).sum();
        // Strided sampling hits ceil(events / stride) steps.
        let expected = out.stats.events.div_ceil(u64::from(stride));
        prop_assert_eq!(sampled, expected);
    }
}
