//! Read/write-mix end-to-end tests: replica-group write consistency
//! (quorum, chain) and the in-switch hot-key cache at the RSNodes.
//!
//! The determinism bar matches the rest of the suite: identical configs
//! must produce byte-identical stats (including every cache counter),
//! and read-only runs must not emit the `rw` stats block at all.

use netrs_sim::{
    run, CacheAdmission, CacheWritePolicy, FaultEvent, FaultPlan, HotCacheConfig, RunStats, Scheme,
    SimConfig, TimedFault, WriteConsistency,
};
use netrs_simcore::SimDuration;
use proptest::prelude::*;

fn base(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.requests = 4_000;
    cfg.scheme = scheme;
    cfg.seed = 11;
    cfg
}

/// A write-heavy config with the hot-key cache enabled on a skewed
/// keyspace, so both the write path and the cache see real traffic.
fn cached(scheme: Scheme) -> SimConfig {
    let mut cfg = base(scheme);
    cfg.write_fraction = 0.1;
    cfg.zipf = 1.2;
    cfg.keys = 2_000;
    cfg.hot_cache = Some(HotCacheConfig {
        capacity: 128,
        admission: CacheAdmission::Lru,
        write_policy: CacheWritePolicy::Invalidate,
    });
    cfg
}

fn rw(stats: &RunStats) -> &netrs_sim::RwStats {
    stats.rw.as_ref().expect("rw stats block present")
}

#[test]
fn writes_complete_under_every_consistency_mode() {
    for scheme in [Scheme::CliRs, Scheme::NetRsToR] {
        for consistency in [
            WriteConsistency::All,
            WriteConsistency::Quorum { w: 2 },
            WriteConsistency::Chain,
        ] {
            let mut cfg = base(scheme);
            cfg.write_fraction = 0.2;
            cfg.write_consistency = consistency;
            let stats = run(cfg);
            assert_eq!(
                stats.completed, stats.issued,
                "{scheme:?}/{consistency:?}: no faults, every request completes"
            );
            assert!(
                stats.writes_issued > 0,
                "{scheme:?}/{consistency:?}: the 20% write mix must issue writes"
            );
            assert!(
                stats.write_latency.count > 0,
                "{scheme:?}/{consistency:?}: write percentiles recorded"
            );
            if consistency == WriteConsistency::All {
                // Legacy mode with no cache: the rw block stays absent so
                // pre-RW consumers see unchanged JSON.
                assert!(stats.rw.is_none(), "{scheme:?}: rw omitted in All mode");
            } else {
                assert_eq!(
                    rw(&stats).writes_completed,
                    stats.writes_issued,
                    "{scheme:?}/{consistency:?}: every write commits without faults"
                );
            }
        }
    }
}

#[test]
fn read_only_runs_emit_no_rw_block() {
    for scheme in [Scheme::CliRs, Scheme::NetRsToR] {
        let stats = run(base(scheme));
        assert!(stats.rw.is_none());
        let json = serde_json::to_string(&stats).expect("stats serialize");
        assert!(
            !json.contains("\"rw\""),
            "{scheme:?}: read-only stats JSON must not mention rw"
        );
    }
}

#[test]
fn cache_serves_hits_and_stays_deterministic() {
    for scheme in [Scheme::NetRsToR, Scheme::NetRsIlp] {
        let a = run(cached(scheme));
        let b = run(cached(scheme));
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{scheme:?}: identical configs must produce byte-identical stats"
        );
        let rw = rw(&a);
        assert!(rw.cache_hits > 0, "{scheme:?}: hot keys must hit the cache");
        assert!(
            rw.cache_misses > 0,
            "{scheme:?}: cold keys must miss the cache"
        );
        assert!(
            rw.cache_invalidations > 0,
            "{scheme:?}: writes must invalidate cached keys"
        );
    }
}

#[test]
fn client_schemes_never_touch_the_cache() {
    // The cache lives at the RSNodes; client-side schemes have none, so
    // configuring one is inert (beyond forcing the rw block on).
    let stats = run(cached(Scheme::CliRs));
    let rw = rw(&stats);
    assert_eq!(rw.cache_hits + rw.cache_misses, 0);
    assert_eq!(rw.cache_invalidations, 0);
}

#[test]
fn cache_cuts_hot_read_latency() {
    // The acceptance experiment from the issue: same seed, Zipf-hot
    // keyspace, ≤10% writes — the cache-on run must show measurably
    // lower read latency than cache-off, because cached GETs skip the
    // selection queue and the whole server round trip.
    let mut off = cached(Scheme::NetRsToR);
    off.hot_cache = None;
    let on = cached(Scheme::NetRsToR);
    let stats_off = run(off);
    let stats_on = run(on);
    let hits = rw(&stats_on).cache_hits;
    let gets = rw(&stats_on).cache_hits + rw(&stats_on).cache_misses;
    assert!(
        hits * 5 > gets,
        "hit ratio too low to matter: {hits}/{gets}"
    );
    assert!(
        stats_on.latency.mean < stats_off.latency.mean,
        "cache-on mean read latency {} must beat cache-off {}",
        stats_on.latency.mean,
        stats_off.latency.mean
    );
    assert!(
        stats_on.latency.p99 <= stats_off.latency.p99,
        "cache-on p99 {} must not exceed cache-off {}",
        stats_on.latency.p99,
        stats_off.latency.p99
    );
}

#[test]
fn lost_invalidations_surface_as_stale_reads() {
    // Drop a burst of packets while writes are in flight: coherence
    // messages die with everything else, so cached entries outlive the
    // versions they were captured at and hits on them count as stale.
    let lossy = |probability: f64| {
        let mut cfg = cached(Scheme::NetRsToR);
        cfg.write_fraction = 0.2;
        cfg.faults = Some(FaultPlan {
            events: vec![TimedFault {
                at: SimDuration::from_millis(10),
                fault: FaultEvent::PacketLossBurst {
                    probability,
                    duration: SimDuration::from_millis(400),
                },
            }],
            ..FaultPlan::default()
        });
        run(cfg)
    };
    let clean = lossy(0.0);
    let faulty = lossy(0.5);
    assert!(
        rw(&faulty).stale_reads > rw(&clean).stale_reads,
        "losing half the invalidations must increase stale reads ({} vs {})",
        rw(&faulty).stale_reads,
        rw(&clean).stale_reads
    );
    let avail = faulty.availability.as_ref().expect("fault plan attached");
    assert_eq!(
        faulty.completed + avail.timeouts,
        faulty.issued,
        "accounting holds under invalidation loss"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: with writes, any consistency mode and the cache on, no
    /// request is silently lost and the cache ledger stays balanced —
    /// every RSNode `GET` is exactly one hit or one miss.
    #[test]
    fn rw_accounting_holds(seed in 0u64..1_000, mode in 0usize..3, write_fraction in 0.05f64..0.4) {
        let mut cfg = cached(Scheme::NetRsToR);
        cfg.requests = 1_500;
        cfg.seed = seed;
        cfg.write_fraction = write_fraction;
        cfg.write_consistency = match mode {
            0 => WriteConsistency::All,
            1 => WriteConsistency::Quorum { w: 2 },
            _ => WriteConsistency::Chain,
        };
        let stats = run(cfg);
        prop_assert_eq!(stats.completed, stats.issued);
        let rw = stats.rw.as_ref().expect("cache on implies rw block");
        // Quorum acks at least W replicas before completing; chain and
        // all-mode writes complete only on the final copy. Either way a
        // completed write is a committed write when nothing faults.
        prop_assert_eq!(rw.writes_completed, stats.writes_issued);
        prop_assert!(rw.cache_hits + rw.cache_misses <= stats.issued - stats.writes_issued,
            "cache lookups cannot exceed reads issued");
        // Stale reads can occur even faultless (a hit can race an
        // in-flight invalidation) but never exceed the hits they ride on.
        prop_assert!(rw.stale_reads <= rw.cache_hits);
    }
}
