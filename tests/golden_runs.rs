//! Golden end-to-end run snapshots: the refactoring safety net.
//!
//! Each case runs one fixed-seed `SimConfig::small()` configuration with
//! the full observability stack attached (request trace with hops,
//! device telemetry) and pins three artifacts byte for byte:
//!
//! * the serialized [`RunStats`] JSON (stored verbatim, human-reviewable),
//! * the `--trace` JSONL stream (pinned by FNV-1a hash + length),
//! * the `--devices` JSONL report (pinned by FNV-1a hash + length),
//! * the `--control` JSONL stream (pinned by FNV-1a hash + length; empty
//!   for client schemes, which have no control plane to audit).
//!
//! The stats/trace/devices fixtures predate the control stream and are
//! asserted with the control sink *attached*, so they double as proof
//! that control-plane observation never perturbs a run.
//!
//! Together the six cases cover every scheme and every event path of the
//! simulator: client selection, R95 duplicates, cubic rate gating,
//! writes, demand skew, in-network steering, the monitored re-plan loop
//! and operator overload degradation. Any refactor of the cluster must
//! keep these bytes identical — the fixtures were captured before the
//! fabric/server/policy split and have not been regenerated since.
//!
//! To (re)generate after an *intentional* behavior change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_runs -- --test-threads=1
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use netrs_selection::CubicConfig;
use netrs_sim::{
    run_observed, ObsOptions, OverloadPolicy, PerfOptions, PlanSource, Scheme, SimConfig,
};
use netrs_simcore::SimDuration;

/// A `Write` sink the test can read back after the run consumed the box.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.0.lock().unwrap())
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// FNV-1a 64-bit over the artifact bytes. Not cryptographic — it only
/// needs to make an accidental behavior change during a refactor visible,
/// and a 64-bit digest plus the exact byte length does that while keeping
/// multi-megabyte trace files out of the repository.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden")
}

/// The pinned configurations. Names are fixture file stems; keep them
/// stable.
fn cases() -> Vec<(&'static str, SimConfig)> {
    let mut cases = Vec::new();
    for (name, scheme) in [
        ("clirs", Scheme::CliRs),
        ("clirs-r95", Scheme::CliRsR95),
        ("netrs-tor", Scheme::NetRsToR),
        ("netrs-ilp", Scheme::NetRsIlp),
    ] {
        let mut cfg = SimConfig::small();
        cfg.scheme = scheme;
        cfg.seed = 42;
        cases.push((name, cfg));
    }

    // The monitored control loop: bootstrap ToR plan, periodic re-plans
    // from monitor snapshots (with operator churn), overload detection.
    let mut cfg = SimConfig::small();
    cfg.scheme = Scheme::NetRsIlp;
    cfg.seed = 7;
    cfg.plan_source = PlanSource::Monitored {
        interval: SimDuration::from_millis(500),
    };
    cfg.overload = Some(OverloadPolicy::default());
    cases.push(("netrs-ilp-monitored", cfg));

    // Client-side extras: cubic rate gating (GatedSend events), a write
    // mix (per-replica fan-out, last-response completion) and demand skew.
    let mut cfg = SimConfig::small();
    cfg.scheme = Scheme::CliRs;
    cfg.seed = 9;
    cfg.write_fraction = 0.2;
    cfg.demand_skew = Some(0.7);
    cfg.rate_control = Some(CubicConfig {
        init_rate: 2_000.0,
        ..CubicConfig::default()
    });
    cases.push(("clirs-gated-writes", cfg));

    cases
}

struct Artifacts {
    stats_json: String,
    trace: Vec<u8>,
    devices: Vec<u8>,
    control: Vec<u8>,
}

fn run_case(cfg: SimConfig) -> Artifacts {
    let trace_sink = SharedBuf::default();
    // The control sink rides along on every case: the pre-control-stream
    // fixtures double as proof that attaching it never perturbs the run.
    let control_sink = SharedBuf::default();
    let obs = ObsOptions {
        trace: Some(Box::new(trace_sink.clone())),
        trace_hops: true,
        timeseries: None,
        device_stats: true,
        control: Some(Box::new(control_sink.clone())),
        // The perf sink also rides along: the pre-profiler fixtures double
        // as proof that wall-clock attribution never perturbs a run.
        perf: Some(PerfOptions { stride: 3 }),
        progress: false,
    };
    let out = run_observed(cfg, obs);
    let perf = out.perf.as_ref().expect("perf profile was enabled");
    assert_eq!(
        perf.kind_count_sum(),
        out.stats.events,
        "perf kind counts must partition the event stream exactly"
    );
    let mut devices = Vec::new();
    out.devices
        .as_ref()
        .expect("device stats were enabled")
        .write_jsonl(&mut devices)
        .expect("writing to a Vec cannot fail");
    Artifacts {
        stats_json: serde_json::to_string_pretty(&out.stats).expect("stats serialize"),
        trace: trace_sink.take(),
        devices,
        control: control_sink.take(),
    }
}

fn digest_line(kind: &str, bytes: &[u8]) -> String {
    format!("{kind} {:016x} {}", fnv1a64(bytes), bytes.len())
}

#[test]
fn golden_runs_are_byte_identical() {
    let dir = fixtures_dir();
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    if regen {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
    }
    for (name, cfg) in cases() {
        let art = run_case(cfg);
        // The RW subsystem (write consistency modes, hot-key caching) is
        // strictly opt-in: none of these pre-RW configs enable it, so
        // their stats must not mention it — that, plus the unchanged
        // digests below, proves the feature emits nothing when off.
        assert!(
            !art.stats_json.contains("\"rw\""),
            "{name}: read-only golden stats must not grow an rw block"
        );
        assert!(!art.trace.is_empty(), "{name}: trace must not be empty");
        assert!(!art.devices.is_empty(), "{name}: devices must not be empty");
        let in_network = name.starts_with("netrs");
        assert_eq!(
            !art.control.is_empty(),
            in_network,
            "{name}: in-network schemes audit their plans; client schemes stay silent"
        );
        let digests = format!(
            "{}\n{}\n",
            digest_line("trace", &art.trace),
            digest_line("devices", &art.devices)
        );
        let control_digest = format!("{}\n", digest_line("control", &art.control));
        let stats_path = dir.join(format!("{name}.stats.json"));
        let digest_path = dir.join(format!("{name}.digests.txt"));
        let control_path = dir.join(format!("{name}.control.txt"));
        if regen {
            std::fs::write(&stats_path, &art.stats_json).expect("write stats fixture");
            std::fs::write(&digest_path, &digests).expect("write digest fixture");
            std::fs::write(&control_path, &control_digest).expect("write control fixture");
            continue;
        }
        let want_stats = std::fs::read_to_string(&stats_path)
            .unwrap_or_else(|e| panic!("{name}: missing fixture {}: {e}", stats_path.display()));
        assert_eq!(
            art.stats_json, want_stats,
            "{name}: RunStats JSON diverged from the pre-refactor golden"
        );
        let want_digests = std::fs::read_to_string(&digest_path)
            .unwrap_or_else(|e| panic!("{name}: missing fixture {}: {e}", digest_path.display()));
        assert_eq!(
            digests, want_digests,
            "{name}: --trace/--devices output diverged from the pre-refactor golden"
        );
        let want_control = std::fs::read_to_string(&control_path)
            .unwrap_or_else(|e| panic!("{name}: missing fixture {}: {e}", control_path.display()));
        assert_eq!(
            control_digest, want_control,
            "{name}: --control output diverged from the pinned control stream"
        );
    }
}
