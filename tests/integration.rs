//! End-to-end integration tests spanning the whole workspace: wire
//! formats through switch rules through full-cluster simulations.

use netrs::{ControllerConfig, NetRsController, PlanSolver, Rsp, TrafficGroups, TrafficMatrix};
use netrs_netdev::{IngressAction, PacketMeta};
use netrs_sim::{run, Cluster, PlanSource, Scheme, SimConfig};
use netrs_simcore::{Engine, SimDuration, SimTime};
use netrs_topology::{FatTree, HostId};
use netrs_wire::{
    classify, MagicField, PacketKind, RequestHeader, ResponseHeader, Rgid, RsnodeId, SourceMarker,
};

fn small(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.scheme = scheme;
    cfg.requests = 3_000;
    cfg.seed = 5;
    cfg
}

/// Walks one request and its response through the *byte-exact* wire
/// format and the deployed switch rules, mirroring Fig. 3 end to end.
#[test]
fn wire_and_rules_agree_end_to_end() {
    let topo = FatTree::new(4).unwrap();
    let clients = [HostId(0), HostId(1)];
    let servers: Vec<HostId> = (8..14).map(HostId).collect();
    let groups = TrafficGroups::rack_level(&topo, &clients);
    let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 100.0)).collect();
    let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);

    let mut controller = NetRsController::new(topo.clone(), ControllerConfig::default());
    controller.plan(&groups, &traffic, PlanSolver::Exact { node_limit: 10_000 });
    let rules = controller.deploy(&groups);

    // 1. The client serializes a request (backup replica as UDP dest).
    let hdr = RequestHeader {
        rid: RsnodeId(0),
        magic: MagicField::REQUEST,
        rv: 0,
        rgid: Rgid::new(0).unwrap(),
    };
    let bytes = hdr.encode(b"GET key-42");
    assert_eq!(classify(&bytes), PacketKind::NetRsRequest);

    // 2. The client's ToR parses it and applies its NetRS rules.
    let (parsed, _) = RequestHeader::decode(&bytes).unwrap();
    let mut pkt = PacketMeta::Request {
        rid: parsed.rid,
        magic: parsed.magic,
        rgid: parsed.rgid.value(),
        src_host: 0,
        dst_host: 8,
    };
    let tor = topo.tor_of_host(HostId(0));
    let action = rules[&tor].ingress(&mut pkt, true);
    let PacketMeta::Request { rid, .. } = pkt else {
        panic!()
    };
    let assigned = controller.current_plan().assignment[&0];
    assert_eq!(
        controller.switch_of_rsnode(rid),
        Some(assigned),
        "ToR must stamp the planned RSNode"
    );
    match action {
        IngressAction::ToAccelerator => assert_eq!(assigned, tor),
        IngressAction::ForwardTowardRsnode(r) => assert_eq!(r, rid),
        other => panic!("unexpected action {other:?}"),
    }

    // 3. At the RSNode's switch the request enters the accelerator.
    let mut at_rsnode = pkt;
    let action = rules[&assigned].ingress(&mut at_rsnode, assigned == tor);
    if assigned != tor {
        assert_eq!(action, IngressAction::ToAccelerator);
    }

    // 4. The selector rebuilds the packet as non-NetRS (magic f(M_resp))
    //    and the server answers with f-inverse of what it saw -> M_resp.
    let request_magic_at_server = MagicField::RESPONSE.f();
    assert_eq!(request_magic_at_server.kind(), PacketKind::Other);
    let response_magic = request_magic_at_server.f_inv();
    assert_eq!(response_magic, MagicField::RESPONSE);

    // 5. The server serializes the response; its ToR stamps the marker.
    let resp = ResponseHeader {
        rid,
        magic: response_magic,
        rv: 0,
        sm: SourceMarker::default(),
        status: netrs_kvstore::ServerStatus {
            queue_len: 3,
            service_time_ns: 4_000_000,
        }
        .encode(),
    };
    let resp_bytes = resp.encode(b"value");
    assert_eq!(classify(&resp_bytes), PacketKind::NetRsResponse);
    let (rh, _) = ResponseHeader::decode(&resp_bytes).unwrap();
    let mut rpkt = PacketMeta::Response {
        rid: rh.rid,
        magic: rh.magic,
        sm: rh.sm,
        src_host: 8,
        dst_host: 0,
    };
    let server_tor = topo.tor_of_host(HostId(8));
    let action = rules[&server_tor].ingress(&mut rpkt, true);
    let PacketMeta::Response { sm, .. } = rpkt else {
        panic!()
    };
    assert_eq!(u32::from(sm.rack), topo.rack_of_host(HostId(8)));
    // If the server's ToR happens to be the RSNode it clones right here;
    // otherwise the response is steered toward the RSNode.
    if server_tor == assigned {
        assert_eq!(action, IngressAction::CloneToAcceleratorAndForward);
    } else {
        assert_eq!(action, IngressAction::ForwardTowardRsnode(rid));
        // 6. At the RSNode: clone to the accelerator, relabel as M_mon.
        let action = rules[&assigned].ingress(&mut rpkt, false);
        assert_eq!(action, IngressAction::CloneToAcceleratorAndForward);
    }
    let PacketMeta::Response { magic, .. } = rpkt else {
        panic!()
    };
    assert_eq!(magic, MagicField::MONITORED, "monitors can count it now");

    // 7. The piggybacked status survives the byte round trip.
    let status = netrs_kvstore::ServerStatus::decode(&rh.status).unwrap();
    assert_eq!(status.queue_len, 3);
    assert_eq!(status.service_time().as_millis_f64(), 4.0);
}

#[test]
fn every_scheme_completes_and_reports_sane_latency() {
    for scheme in Scheme::ALL {
        let stats = run(small(scheme));
        assert_eq!(stats.issued, 3_000, "{scheme}");
        assert_eq!(stats.completed, 3_000, "{scheme}");
        let l = &stats.latency;
        assert!(l.count > 0, "{scheme}");
        assert!(
            l.mean >= SimDuration::from_micros(60),
            "{scheme}: network floor"
        );
        assert!(l.p95 >= l.p50, "{scheme}");
        assert!(l.p99 >= l.p95, "{scheme}");
        assert!(l.p999 >= l.p99, "{scheme}");
        assert!(l.max >= l.p999, "{scheme}");
        if scheme.is_in_network() {
            assert!(stats.rsnode_count > 0, "{scheme}");
            assert!(stats.mean_accel_utilization > 0.0, "{scheme}");
        } else {
            assert_eq!(stats.rsnode_count, 0, "{scheme}");
        }
    }
}

#[test]
fn r95_sends_duplicates_only_in_r95_scheme() {
    let base = run(small(Scheme::CliRs));
    assert_eq!(base.duplicates, 0);
    let mut cfg = small(Scheme::CliRsR95);
    cfg.requests = 8_000;
    let r95 = run(cfg);
    assert!(
        r95.duplicates > 0,
        "R95 must hedge some requests at 90% utilization"
    );
    assert!(
        r95.duplicates < r95.issued / 2,
        "hedging should stay a small fraction, got {}",
        r95.duplicates
    );
}

#[test]
fn monitored_plan_source_replans_from_measurements() {
    let mut cfg = small(Scheme::NetRsIlp);
    cfg.requests = 20_000;
    cfg.plan_source = PlanSource::Monitored {
        interval: SimDuration::from_millis(500),
    };
    let stats = run(cfg);
    assert_eq!(stats.completed, 20_000);
    assert!(stats.replans > 0, "controller should have re-planned");
    assert!(
        stats.rsnode_count > 0,
        "final plan still has RSNodes: {stats:?}"
    );
}

#[test]
fn operator_failure_mid_run_engages_drs_and_loses_nothing() {
    let mut cfg = small(Scheme::NetRsToR);
    cfg.requests = 10_000;
    let mut engine = Engine::new(Cluster::new(cfg));
    let mut queue = std::mem::take(engine.queue_mut());
    engine.world_mut().prime(&mut queue);
    *engine.queue_mut() = queue;

    engine.run_until(SimTime::ZERO + SimDuration::from_millis(300));
    let victim = engine
        .world()
        .current_plan()
        .unwrap()
        .rsnodes()
        .into_iter()
        .next()
        .unwrap();
    let affected = engine
        .world_mut()
        .fail_operator(victim)
        .expect("NetRS schemes have in-network operators");
    assert!(!affected.is_empty());
    engine.run();
    let cluster = engine.into_world();
    assert_eq!(cluster.completed(), cluster.issued());
    let plan = cluster.current_plan().unwrap();
    assert!(!plan.drs.is_empty());
    assert!(!plan.rsnodes().contains(&victim));
}

#[test]
fn rate_controlled_clirs_still_completes() {
    let mut cfg = small(Scheme::CliRs);
    cfg.rate_control = Some(netrs_selection::CubicConfig {
        init_rate: 2_000.0,
        ..netrs_selection::CubicConfig::default()
    });
    cfg.requests = 5_000;
    let stats = run(cfg);
    assert_eq!(stats.completed, 5_000);
}

#[test]
fn tor_plan_and_ilp_plan_agree_on_coverage() {
    let topo = FatTree::new(4).unwrap();
    let clients = [HostId(0), HostId(2), HostId(5), HostId(13)];
    let groups = TrafficGroups::rack_level(&topo, &clients);
    let tor = Rsp::tor_plan(&groups);
    assert_eq!(tor.assignment.len(), groups.len());
    let servers: Vec<HostId> = (8..12).map(HostId).collect();
    let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 100.0)).collect();
    let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);
    let mut controller = NetRsController::new(topo, ControllerConfig::default());
    let ilp = controller
        .plan(&groups, &traffic, PlanSolver::Exact { node_limit: 10_000 })
        .clone();
    assert_eq!(ilp.assignment.len(), groups.len());
    assert!(
        ilp.rsnodes().len() <= tor.rsnodes().len(),
        "the ILP never needs more RSNodes than one-per-rack"
    );
}

#[test]
fn write_mix_completes_and_loads_all_replicas() {
    let mut cfg = small(Scheme::CliRs);
    cfg.write_fraction = 0.3;
    cfg.requests = 6_000;
    let stats = run(cfg.clone());
    assert_eq!(stats.completed, 6_000);
    assert!(
        stats.writes_issued > 1_200 && stats.writes_issued < 2_400,
        "~30% writes expected, got {}",
        stats.writes_issued
    );
    assert!(stats.write_latency.count > 0);
    // A write waits for its slowest replica: write latency dominates the
    // read mean.
    assert!(
        stats.write_latency.mean > stats.latency.mean,
        "write mean {} vs read mean {}",
        stats.write_latency.mean,
        stats.latency.mean
    );

    // Writes work identically as plain traffic under NetRS.
    cfg.scheme = Scheme::NetRsIlp;
    let stats = run(cfg);
    assert_eq!(stats.completed, 6_000);
    assert!(stats.write_latency.count > 0);
}

#[test]
fn overloaded_operator_degrades_to_drs() {
    let mut cfg = small(Scheme::NetRsToR);
    cfg.requests = 8_000;
    // A pathologically slow accelerator: selections take 2 ms, so any
    // RSNode with traffic overloads almost immediately.
    cfg.accelerator.service_time = SimDuration::from_millis(2);
    cfg.overload = Some(netrs_sim::OverloadPolicy {
        interval: SimDuration::from_millis(50),
        utilization_limit: 0.5,
    });
    let stats = run(cfg);
    assert_eq!(stats.completed, 8_000, "DRS keeps every request served");
    assert!(
        stats.overload_events > 0,
        "the overload detector must have fired: {stats:?}"
    );
    assert!(stats.drs_groups > 0, "groups must have degraded");

    // Without the policy the same setup still completes (slowly), with
    // zero overload events.
    let mut cfg = small(Scheme::NetRsToR);
    cfg.requests = 8_000;
    cfg.accelerator.service_time = SimDuration::from_millis(2);
    let stats = run(cfg);
    assert_eq!(stats.overload_events, 0);
    assert_eq!(stats.drs_groups, 0);
}
