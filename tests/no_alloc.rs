//! Allocation audit of the per-packet hot path.
//!
//! A counting `#[global_allocator]` (which needs `unsafe`, so it cannot
//! live inside the `#![forbid(unsafe_code)]` library) proves that the
//! healthy-fabric timing trio — the code that runs for every simulated
//! packet — never touches the heap, and pins the size of the event
//! payload the queue copies around.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use netrs_sim::testhooks::TimingProbe;
use netrs_sim::Ev;
use netrs_simcore::SimDuration;

// Per-thread counter so the measurement ignores allocations made by
// other tests the harness runs concurrently. `Cell<u64>` is const-init
// and has no destructor, so touching it from inside the allocator cannot
// recurse through lazy TLS setup.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

#[test]
fn healthy_timing_fast_path_never_allocates() {
    let probe = TimingProbe::new(8);
    let hosts = u64::from(probe.num_hosts());
    let switches = u64::from(probe.num_switches());
    let mut total = SimDuration::ZERO;
    let allocs = allocs_during(|| {
        for h in 0..256u64 {
            let a = (h % hosts) as u32;
            let b = ((h * 31 + 7) % hosts) as u32;
            let sw = ((h * 13 + 3) % switches) as u32;
            total += probe.trio(a, b, sw, h).expect("healthy fabric");
        }
    });
    assert!(total > SimDuration::ZERO, "sanity: timing was computed");
    assert_eq!(
        allocs, 0,
        "per-packet timing on a healthy fabric must not touch the heap"
    );
}

#[test]
fn event_payload_stays_within_audited_size() {
    // Every scheduled event is moved into the queue's payload slab; the
    // heap entries themselves are a fixed 24 bytes. The audited bound
    // here is set by the `ServerToken`-carrying variants (~104 bytes) —
    // a new variant or field that pushes past it deserves a Box.
    let size = std::mem::size_of::<Ev>();
    assert!(
        size <= 112,
        "Ev grew to {size} bytes; box the large variant"
    );
}
