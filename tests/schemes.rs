//! Behavioural comparisons between schemes: the directional claims of the
//! paper's evaluation must hold in miniature (deterministic seeds).

use netrs_sim::{run, run_seeds, RunStats, Scheme, SimConfig};

/// A mid-size cluster big enough for scheme differences to show.
fn base() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.arity = 8;
    cfg.servers = 24;
    cfg.clients = 64;
    cfg.generators = 16;
    cfg.requests = 25_000;
    cfg.utilization = 0.9;
    cfg.seed = 1;
    cfg
}

fn mean_of(scheme: Scheme) -> f64 {
    let mut cfg = base();
    cfg.scheme = scheme;
    let runs = run_seeds(&cfg, &[1, 2]);
    RunStats::mean_of(&runs).mean_ms
}

#[test]
fn netrs_ilp_beats_clirs_in_mean_latency() {
    let clirs = mean_of(Scheme::CliRs);
    let ilp = mean_of(Scheme::NetRsIlp);
    assert!(
        ilp < clirs,
        "paper's headline: NetRS-ILP ({ilp:.3} ms) must beat CliRS ({clirs:.3} ms)"
    );
}

#[test]
fn netrs_ilp_beats_netrs_tor() {
    let tor = mean_of(Scheme::NetRsToR);
    let ilp = mean_of(Scheme::NetRsIlp);
    assert!(
        ilp < tor,
        "the ILP placement ({ilp:.3} ms) must beat one-RSNode-per-rack ({tor:.3} ms)"
    );
}

#[test]
fn ilp_uses_fewer_rsnodes_than_tor() {
    let mut tor_cfg = base();
    tor_cfg.scheme = Scheme::NetRsToR;
    let mut ilp_cfg = base();
    ilp_cfg.scheme = Scheme::NetRsIlp;
    let tor = run(tor_cfg);
    let ilp = run(ilp_cfg);
    assert!(
        ilp.rsnode_count < tor.rsnode_count,
        "ILP consolidates RSNodes: {} vs {}",
        ilp.rsnode_count,
        tor.rsnode_count
    );
}

#[test]
fn latency_grows_with_utilization() {
    // Fig. 6's x-axis: higher system utilization → higher latency. We
    // assert it for the schemes whose RSNodes see partial traffic
    // (NetRS-ILP's aggregated view makes it nearly flat in our model —
    // see EXPERIMENTS.md).
    for scheme in [Scheme::CliRs, Scheme::CliRsR95, Scheme::NetRsToR] {
        let mut lows = base();
        lows.scheme = scheme;
        lows.utilization = 0.3;
        lows.requests = 40_000;
        let mut highs = lows.clone();
        highs.utilization = 0.95;
        let low = run(lows).latency.mean;
        let high = run(highs).latency.mean;
        assert!(
            low < high,
            "{scheme}: mean at 30% util ({low}) must be below 95% util ({high})"
        );
    }
}

#[test]
fn r95_wins_the_tail_at_low_utilization_only() {
    // Fig. 6 observation (iii): redundant requests cut tail latency when
    // utilization is low, but stop paying at high utilization.
    let mut r95_low = base();
    r95_low.scheme = Scheme::CliRsR95;
    r95_low.utilization = 0.3;
    r95_low.requests = 40_000;
    let mut clirs_low = r95_low.clone();
    clirs_low.scheme = Scheme::CliRs;
    let r95 = run(r95_low).latency.p99;
    let clirs = run(clirs_low).latency.p99;
    assert!(
        r95 < clirs,
        "at 30% util R95 p99 ({r95}) must beat CliRS p99 ({clirs})"
    );

    let mut r95_high = base();
    r95_high.scheme = Scheme::CliRsR95;
    r95_high.utilization = 0.95;
    r95_high.requests = 40_000;
    let mut clirs_high = r95_high.clone();
    clirs_high.scheme = Scheme::CliRs;
    let r95 = run(r95_high).latency.mean;
    let clirs = run(clirs_high).latency.mean;
    assert!(
        r95 > clirs,
        "at 95% util R95 mean ({r95}) must degrade past CliRS ({clirs})"
    );
}

#[test]
fn faster_servers_mean_lower_latency() {
    // Fig. 7's x-axis: shorter service times → shorter latencies.
    let mut fast = base();
    fast.scheme = Scheme::NetRsIlp;
    fast.server.base_service_time = netrs_simcore::SimDuration::from_micros(500);
    let mut slow = base();
    slow.scheme = Scheme::NetRsIlp;
    slow.server.base_service_time = netrs_simcore::SimDuration::from_millis(4);
    let f = run(fast).latency.mean;
    let s = run(slow).latency.mean;
    assert!(f < s, "0.5ms service ({f}) must beat 4ms service ({s})");
}

#[test]
fn demand_skew_runs_and_preserves_completion() {
    for skew in [0.7, 0.95] {
        let mut cfg = base();
        cfg.scheme = Scheme::NetRsIlp;
        cfg.demand_skew = Some(skew);
        cfg.requests = 10_000;
        let stats = run(cfg);
        assert_eq!(stats.completed, 10_000, "skew {skew}");
    }
}

#[test]
fn c3_beats_random_selection_in_the_tail() {
    // The C3 selector is the point of the whole exercise: against the
    // same cluster, random selection must have a worse tail.
    let mut c3 = base();
    c3.scheme = Scheme::CliRs;
    c3.requests = 20_000;
    let mut random = c3.clone();
    random.selector = netrs_selection::SelectorKind::Random;
    let c3_p99 = run(c3).latency.p99;
    let random_p99 = run(random).latency.p99;
    assert!(
        c3_p99 < random_p99,
        "C3 p99 ({c3_p99}) must beat random p99 ({random_p99})"
    );
}
