//! Integration tests for the observability layer: JSONL request traces
//! whose phases telescope exactly to the end-to-end latency, a populated
//! per-phase latency breakdown for every scheme, the virtual-time
//! sampler's time series, the engine profile, and — crucially — that
//! attaching any of it does not perturb the simulated event sequence.

use std::io::Write;
use std::sync::{Arc, Mutex};

use netrs_sim::{
    run, run_observed, ObsOptions, SamplePoint, SamplerSpec, Scheme, SimConfig, TimeSeries,
    TraceRecord,
};
use netrs_simcore::SimDuration;

/// A `Write` sink the test can inspect after the run consumed the box.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take_string(&self) -> String {
        let bytes = std::mem::take(&mut *self.0.lock().unwrap());
        String::from_utf8(bytes).expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn small(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.scheme = scheme;
    cfg.requests = 3_000;
    cfg.seed = 11;
    cfg
}

fn traced_run(scheme: Scheme) -> (Vec<TraceRecord>, netrs_sim::RunOutput) {
    let sink = SharedBuf::default();
    let obs = ObsOptions {
        trace: Some(Box::new(sink.clone())),
        trace_hops: false,
        timeseries: Some(SamplerSpec {
            interval: SimDuration::from_millis(5),
            capacity: 4_096,
        }),
        device_stats: false,
        control: None,
        progress: false,
        perf: None,
    };
    let out = run_observed(small(scheme), obs);
    let text = sink.take_string();
    let records: Vec<TraceRecord> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("every trace line parses as a TraceRecord"))
        .collect();
    (records, out)
}

/// The acceptance criterion: every trace line's phase durations sum to
/// its end-to-end latency — exactly, because each phase is a difference
/// of consecutive event timestamps.
#[test]
fn trace_phases_telescope_to_end_to_end_latency() {
    for scheme in Scheme::ALL {
        let (records, out) = traced_run(scheme);
        assert!(
            !records.is_empty(),
            "{scheme}: trace should contain records"
        );
        for r in &records {
            assert_eq!(
                r.e2e_ns,
                r.received_ns - r.issued_ns,
                "{scheme}: e2e must equal received - issued for req {}",
                r.req
            );
            assert_eq!(
                r.phase_sum_ns(),
                r.e2e_ns,
                "{scheme}: phases must sum to e2e for req {} ({r:?})",
                r.req
            );
            assert!(
                r.selection_wait_ns <= r.selection_ns,
                "{scheme}: queue wait is a sub-interval of selection"
            );
        }
        let firsts = records.iter().filter(|r| r.first && !r.write).count() as u64;
        assert_eq!(
            firsts, out.stats.completed,
            "{scheme}: one winning trace record per completed read"
        );
    }
}

/// In-network schemes steer through an RSNode, so the steering and
/// selection phases must be non-zero there and zero-steer for client
/// schemes.
#[test]
fn in_network_schemes_show_selection_time() {
    let (clirs, _) = traced_run(Scheme::CliRs);
    assert!(
        clirs.iter().all(|r| r.steer_ns == 0),
        "CliRS has no steering hop"
    );
    let (ilp, _) = traced_run(Scheme::NetRsIlp);
    assert!(
        ilp.iter().filter(|r| r.first).all(|r| r.steer_ns > 0),
        "NetRS winners travel client -> RSNode first"
    );
    assert!(
        ilp.iter().any(|r| r.selection_ns > 0),
        "accelerator selection takes sim time"
    );
}

/// The breakdown on `RunStats` must be populated for all four schemes,
/// and its per-phase means must sum to the end-to-end mean (up to one
/// integer division's rounding per phase).
#[test]
fn breakdown_is_populated_and_sums_to_latency_for_all_schemes() {
    for scheme in Scheme::ALL {
        let stats = run(small(scheme));
        let b = &stats.breakdown;
        assert_eq!(
            b.count, stats.latency.count,
            "{scheme}: breakdown covers the same requests as the latency summary"
        );
        assert!(b.count > 0, "{scheme}: breakdown must be populated");
        assert!(
            b.network.mean > SimDuration::ZERO,
            "{scheme}: network propagation is never free"
        );
        assert!(
            b.service.mean > SimDuration::ZERO,
            "{scheme}: service time is never free"
        );
        let phase_sum = b.network.mean.as_nanos()
            + b.selection.mean.as_nanos()
            + b.server_queue.mean.as_nanos()
            + b.service.mean.as_nanos();
        let e2e = stats.latency.mean.as_nanos();
        let diff = phase_sum.abs_diff(e2e);
        assert!(
            diff <= 8,
            "{scheme}: phase means ({phase_sum}ns) must sum to the e2e mean \
             ({e2e}ns) within integer-division rounding, off by {diff}ns"
        );
    }
}

/// The sampler produces aligned, bounded series with sane values.
#[test]
fn sampler_produces_aligned_bounded_series() {
    let (_, out) = traced_run(Scheme::NetRsToR);
    let ts: &TimeSeries = out.timeseries.as_ref().expect("sampler was enabled");
    assert!(!ts.is_empty(), "a multi-ms run spans several 5ms ticks");
    assert_eq!(ts.accel_util.len(), ts.server_occupancy.len());
    assert_eq!(ts.accel_util.len(), ts.outstanding.len());
    assert_eq!(ts.accel_util.len(), ts.drs_groups.len());
    let points: Vec<SamplePoint> = ts.points().collect();
    assert_eq!(points.len(), ts.len());
    let mut last_t = 0;
    for p in &points {
        assert!(p.t_ns > last_t, "sample times strictly increase");
        last_t = p.t_ns;
        assert!((0.0..=1.0).contains(&p.accel_util), "util in [0,1]");
        assert!(
            (0.0..=1.0).contains(&p.server_occupancy),
            "occupancy in [0,1]"
        );
        assert!(p.outstanding >= 0.0 && p.drs_groups >= 0.0);
    }
    assert!(
        points.iter().any(|p| p.accel_util > 0.0),
        "a NetRS run exercises its accelerators"
    );
    assert!(
        points.iter().any(|p| p.server_occupancy > 0.0),
        "servers see load"
    );
}

/// The engine profile agrees with the run's own event count.
#[test]
fn engine_profile_matches_run_stats() {
    let (_, out) = traced_run(Scheme::CliRs);
    assert_eq!(out.profile.events, out.stats.events);
    assert!(out.profile.queue_high_water > 0);
    assert!(out.profile.wall_seconds > 0.0);
    assert!(out.profile.events_per_sec > 0.0);
}

/// Observation must not perturb the simulation: a traced run reports
/// byte-identical latency statistics to a plain `run` of the same
/// configuration. (The sampler adds events, so only event *timing* of
/// requests is compared, via the latency summary and completion counts.)
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let plain = run(small(Scheme::NetRsIlp));
    let (_, traced) = traced_run(Scheme::NetRsIlp);
    assert_eq!(plain.latency, traced.stats.latency);
    assert_eq!(plain.completed, traced.stats.completed);
    assert_eq!(plain.duplicates, traced.stats.duplicates);
    assert_eq!(
        plain.breakdown.network.mean,
        traced.stats.breakdown.network.mean
    );

    // With the sampler off, even the event count is identical.
    let sink = SharedBuf::default();
    let obs = ObsOptions {
        trace: Some(Box::new(sink.clone())),
        trace_hops: false,
        timeseries: None,
        device_stats: false,
        control: None,
        progress: false,
        perf: None,
    };
    let trace_only = run_observed(small(Scheme::NetRsIlp), obs);
    assert_eq!(plain.events, trace_only.stats.events);
    assert!(!sink.take_string().is_empty());
}

fn hop_traced_run(scheme: Scheme) -> (Vec<TraceRecord>, netrs_sim::RunOutput) {
    let sink = SharedBuf::default();
    let obs = ObsOptions {
        trace: Some(Box::new(sink.clone())),
        trace_hops: true,
        timeseries: None,
        device_stats: false,
        control: None,
        progress: false,
        perf: None,
    };
    let out = run_observed(small(scheme), obs);
    let text = sink.take_string();
    let records: Vec<TraceRecord> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("every trace line parses as a TraceRecord"))
        .collect();
    (records, out)
}

/// The hop-span acceptance criterion: under `--trace-hops`, every record
/// carries a covering walk of the request's path — hops are contiguous
/// (each departure is the next arrival), the walk starts at issue and
/// ends at receive, and hop durations sum *exactly* to the end-to-end
/// latency. Holds for all four schemes.
#[test]
fn hop_spans_telescope_exactly_for_all_schemes() {
    for scheme in Scheme::ALL {
        let (records, out) = hop_traced_run(scheme);
        assert!(!records.is_empty(), "{scheme}: trace should have records");
        assert_eq!(
            records.iter().filter(|r| r.first && !r.write).count() as u64,
            out.stats.completed,
            "{scheme}: one winning record per completed read"
        );
        for r in &records {
            assert!(
                !r.hops.is_empty(),
                "{scheme}: hop tracing fills hops for req {}",
                r.req
            );
            assert_eq!(
                r.hops.first().unwrap().arrive_ns,
                r.issued_ns,
                "{scheme}: the walk starts when the request is issued (req {})",
                r.req
            );
            assert_eq!(
                r.hops.last().unwrap().depart_ns,
                r.received_ns,
                "{scheme}: the walk ends when the reply is received (req {})",
                r.req
            );
            for pair in r.hops.windows(2) {
                assert_eq!(
                    pair[0].depart_ns, pair[1].arrive_ns,
                    "{scheme}: hops must be contiguous for req {} ({:?} -> {:?})",
                    r.req, pair[0], pair[1]
                );
            }
            assert_eq!(
                r.hop_sum_ns(),
                r.e2e_ns,
                "{scheme}: hop durations must sum to e2e for req {} (hops {:?})",
                r.req,
                r.hops
            );
        }
    }
}

/// Without `--trace-hops` the hops vector stays empty (and, per the
/// serializer, absent from the JSONL line), so the PR 1 trace schema is
/// unchanged by default.
#[test]
fn hops_stay_empty_without_the_flag() {
    let (records, _) = traced_run(Scheme::NetRsIlp);
    assert!(records.iter().all(|r| r.hops.is_empty()));
}

/// Acceptance criterion: compiling the registry in but leaving it
/// disabled changes nothing — a plain run and a device-stats run report
/// identical statistics (same events, same latency distribution), and
/// only the latter yields a report.
#[test]
fn device_stats_do_not_perturb_the_simulation() {
    let plain = run(small(Scheme::NetRsIlp));
    let obs = ObsOptions {
        trace: None,
        trace_hops: false,
        timeseries: None,
        device_stats: true,
        control: None,
        progress: false,
        perf: None,
    };
    let instrumented = run_observed(small(Scheme::NetRsIlp), obs);
    assert_eq!(plain.events, instrumented.stats.events);
    assert_eq!(plain.latency, instrumented.stats.latency);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&instrumented.stats).unwrap(),
        "RunStats must be byte-identical with telemetry on"
    );
    let report = instrumented.devices.expect("device stats were enabled");
    assert!(!report.records.is_empty());

    let disabled = run_observed(small(Scheme::NetRsIlp), ObsOptions::default());
    assert!(disabled.devices.is_none(), "no report without the flag");
}

/// The device report is internally consistent: every completed request
/// shows up as a client op, selections happen on accelerators only, and
/// traffic traverses links of every tier the scheme exercises.
#[test]
fn device_report_accounts_for_the_run() {
    let obs = ObsOptions {
        trace: None,
        trace_hops: false,
        timeseries: None,
        device_stats: true,
        control: None,
        progress: false,
        perf: None,
    };
    let out = run_observed(small(Scheme::NetRsIlp), obs);
    let report = out.devices.expect("device stats were enabled");

    let client_ops: u64 = report.of_kind("client").map(|r| r.ops).sum();
    assert_eq!(client_ops, out.stats.issued, "one client op per request");

    let selections: u64 = report.of_kind("accel").map(|r| r.selections).sum();
    assert!(
        selections > 0 && selections <= out.stats.completed,
        "reads steered through an RSNode are selected exactly once \
         ({selections} selections, {} completed)",
        out.stats.completed
    );
    assert!(report.of_kind("server").all(|r| r.tier == 3));
    assert!(
        report.of_kind("accel").any(|r| r.busy_ns > 0),
        "accelerators accumulate busy time"
    );
    let link_packets: u64 = report.of_kind("link").map(|r| r.total_packets()).sum();
    assert!(link_packets > 0, "traffic crossed links");
    assert!(
        report
            .of_kind("link")
            .any(|r| r.utilization > 0.0 && r.utilization <= 1.0),
        "link utilization is in (0, 1]"
    );
    assert_eq!(report.sim_end_ns, out.stats.sim_end.as_nanos());
}

// ---- control-plane observability -------------------------------------------

/// Rebuilds the in-memory monitor window a parsed `--control` snapshot
/// line describes — the inverse of [`SnapshotRecord::from_snapshot`].
fn rebuild_snapshot(rec: &netrs_sim::SnapshotRecord) -> netrs_netdev::TrafficSnapshot {
    netrs_netdev::TrafficSnapshot {
        local: netrs_wire::SourceMarker {
            pod: rec.pod as u16,
            rack: rec.tor as u16,
        },
        counts: rec.groups.iter().map(|g| (g.group, g.counts)).collect(),
        from: netrs_simcore::SimTime::from_nanos(rec.from_ns),
        to: netrs_simcore::SimTime::from_nanos(rec.to_ns),
    }
}

/// The snapshot export is lossless with respect to the controller's
/// aggregation: serializing randomized monitor windows to the control
/// JSONL schema, parsing them back and re-aggregating reproduces the
/// `TrafficMatrix` the controller would have built from the originals —
/// bit for bit, not approximately, because the export carries the raw
/// window counts and bounds rather than derived rates.
#[test]
fn snapshot_export_reaggregates_to_the_controllers_traffic_matrix() {
    use netrs::TrafficMatrix;
    use netrs_netdev::Monitor;
    use netrs_sim::SnapshotRecord;
    use netrs_simcore::SimTime;
    use netrs_wire::SourceMarker;

    // Deterministic xorshift64*: the test is a fixed property check over
    // 32 randomized monitor fleets, not a flaky sample.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut rng = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };

    for round in 0..32 {
        let n_groups = 1 + (rng() % 12) as usize;
        let n_tors = 1 + (rng() % 8) as u16;
        let mut snapshots = Vec::new();
        let mut clock = SimTime::ZERO;
        for tor in 0..n_tors {
            let local = SourceMarker {
                pod: tor / 2,
                rack: tor,
            };
            let mut monitor = Monitor::new(local);
            // Empty window for the first monitor of odd rounds: the
            // degenerate from == to case must survive the round trip too.
            let events = if tor == 0 && round % 2 == 1 {
                0
            } else {
                rng() % 200
            };
            for _ in 0..events {
                let group = (rng() % n_groups as u64) as u32;
                let remote = SourceMarker {
                    pod: (rng() % 4) as u16,
                    rack: (rng() % 8) as u16,
                };
                monitor.record(group, remote);
            }
            clock += netrs_simcore::SimDuration::from_micros(1 + rng() % 900_000);
            snapshots.push(monitor.snapshot(clock));
        }

        let direct = TrafficMatrix::from_snapshots(n_groups, &snapshots);

        let jsonl: String = snapshots
            .iter()
            .map(|s| {
                serde_json::to_string(&SnapshotRecord::from_snapshot(s))
                    .expect("snapshot record serializes")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let rebuilt: Vec<netrs_netdev::TrafficSnapshot> = jsonl
            .lines()
            .map(|line| {
                let rec: SnapshotRecord =
                    serde_json::from_str(line).expect("snapshot line parses back");
                rebuild_snapshot(&rec)
            })
            .collect();
        let reaggregated = TrafficMatrix::from_snapshots(n_groups, &rebuilt);

        assert_eq!(
            direct.total().to_bits(),
            reaggregated.total().to_bits(),
            "round {round}: totals must match bit for bit"
        );
        for g in 0..n_groups as u32 {
            for tier in 0..3 {
                assert_eq!(
                    direct.tier_rates(g)[tier].to_bits(),
                    reaggregated.tier_rates(g)[tier].to_bits(),
                    "round {round}: group {g} tier {tier} diverged after the round trip"
                );
            }
        }
    }
}

/// End-to-end contract of the `--control` stream on the monitored
/// control loop: the stream is byte-identical across same-seed runs, it
/// opens with the bootstrap decision, each ToR's snapshot windows abut
/// (no monitored interval is lost or double-counted), and every re-plan
/// decision is preceded by the snapshot batch it consumed.
#[test]
fn control_stream_is_deterministic_and_windows_abut() {
    use netrs_sim::{ControlRecord, PlanSource};
    use std::collections::BTreeMap;

    let capture = || {
        let sink = SharedBuf::default();
        let mut cfg = small(Scheme::NetRsIlp);
        cfg.plan_source = PlanSource::Monitored {
            interval: SimDuration::from_millis(100),
        };
        let obs = ObsOptions {
            trace: None,
            trace_hops: false,
            timeseries: None,
            device_stats: false,
            control: Some(Box::new(sink.clone())),
            progress: false,
            perf: None,
        };
        let _ = run_observed(cfg, obs);
        sink.take_string()
    };

    let text = capture();
    assert_eq!(text, capture(), "same seed must yield the same bytes");

    let records: Vec<ControlRecord> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("every control line parses"))
        .collect();
    assert!(
        matches!(&records[0], ControlRecord::Plan(p) if p.trigger == "initial"),
        "the stream opens with the bootstrap decision"
    );

    let mut window_end: BTreeMap<u32, u64> = BTreeMap::new();
    let mut pending_snapshots = 0usize;
    let mut replans = 0usize;
    for rec in &records {
        match rec {
            ControlRecord::Snapshot(s) => {
                assert!(s.to_ns >= s.from_ns, "window bounds are ordered");
                if let Some(&prev) = window_end.get(&s.tor) {
                    assert_eq!(
                        s.from_ns, prev,
                        "ToR {}: windows must abut — no gap, no overlap",
                        s.tor
                    );
                }
                window_end.insert(s.tor, s.to_ns);
                pending_snapshots += 1;
            }
            ControlRecord::Plan(p) if p.trigger == "replan" => {
                assert!(
                    pending_snapshots > 0,
                    "a re-plan consumes the snapshot batch emitted just before it"
                );
                pending_snapshots = 0;
                replans += 1;
                assert!(p.solve.is_some(), "re-plans run a solve");
            }
            _ => {}
        }
    }
    assert!(replans > 0, "the monitored loop re-planned at least once");
    assert!(
        window_end.len() > 1,
        "more than one ToR reported monitor windows"
    );
}
