//! Sharded-engine equivalence tests.
//!
//! The shard refactor's acceptance contract (DESIGN.md §13): driving the
//! cluster through [`netrs_sim::run_sharded`] with one shard must be
//! **byte-identical** to the sequential engine — same `RunStats`, same
//! request-trace JSONL, same device telemetry — for every scheme, and
//! multi-shard runs must be deterministic per seed (run twice, get the
//! same bytes) even though their within-window event order differs from
//! the sequential engine's.

use std::io::Write;
use std::sync::{Arc, Mutex};

use netrs_sim::{
    run, run_observed, run_observed_sharded, run_seeds, run_seeds_sharded, run_sharded, ObsOptions,
    Scheme, SimConfig,
};

/// A `Write` sink the test can inspect after the run consumed the box.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take_string(&self) -> String {
        let bytes = std::mem::take(&mut *self.0.lock().unwrap());
        String::from_utf8(bytes).expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const SEEDS: [u64; 3] = [11, 12, 13];

fn tiny(scheme: Scheme, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.requests = 1_500;
    cfg.scheme = scheme;
    cfg.seed = seed;
    cfg
}

fn stats_json(stats: &netrs_sim::RunStats) -> String {
    serde_json::to_string_pretty(stats).expect("stats serialize")
}

/// One shard, no observers: `RunStats` byte-identical to the sequential
/// engine for all four schemes and three seeds.
#[test]
fn one_shard_stats_match_sequential_for_all_schemes() {
    for scheme in Scheme::ALL {
        for seed in SEEDS {
            let sequential = run(tiny(scheme, seed));
            let sharded = run_sharded(tiny(scheme, seed), 1);
            assert_eq!(
                stats_json(&sequential),
                stats_json(&sharded),
                "{scheme:?} seed {seed}: one-shard run diverged from sequential"
            );
        }
    }
}

/// One shard with the full observer set attached: the trace JSONL and
/// device telemetry are byte-identical too, so downstream artifact
/// diffs cannot tell the engines apart.
#[test]
fn one_shard_trace_and_devices_match_sequential() {
    for scheme in Scheme::ALL {
        let observed = |sharded: Option<u32>| {
            let sink = SharedBuf::default();
            let obs = ObsOptions {
                trace: Some(Box::new(sink.clone())),
                trace_hops: true,
                device_stats: true,
                ..ObsOptions::default()
            };
            let cfg = tiny(scheme, 11);
            let out = match sharded {
                Some(shards) => run_observed_sharded(cfg, shards, obs),
                None => run_observed(cfg, obs),
            };
            let report = out.devices.expect("device stats requested");
            let devices: String = report
                .records
                .iter()
                .map(|r| {
                    let mut line = serde_json::to_string(r).expect("device record serialize");
                    line.push('\n');
                    line
                })
                .collect();
            (stats_json(&out.stats), sink.take_string(), devices)
        };
        let (seq_stats, seq_trace, seq_devices) = observed(None);
        let (sh_stats, sh_trace, sh_devices) = observed(Some(1));
        assert_eq!(seq_stats, sh_stats, "{scheme:?}: stats diverged");
        assert_eq!(seq_trace, sh_trace, "{scheme:?}: trace JSONL diverged");
        assert_eq!(
            seq_devices, sh_devices,
            "{scheme:?}: device report diverged"
        );
    }
}

/// Multi-shard runs are deterministic: the same seed produces the same
/// bytes run after run, for every scheme, and the workload still
/// completes.
#[test]
fn multi_shard_runs_are_deterministic_per_seed() {
    for scheme in Scheme::ALL {
        for seed in SEEDS {
            let a = run_sharded(tiny(scheme, seed), 4);
            let b = run_sharded(tiny(scheme, seed), 4);
            assert_eq!(
                stats_json(&a),
                stats_json(&b),
                "{scheme:?} seed {seed}: multi-shard run not reproducible"
            );
            assert_eq!(a.completed, 1_500, "{scheme:?} seed {seed}: work lost");
        }
    }
}

/// Different seeds still produce different multi-shard runs (the
/// per-shard RNG split must not collapse the seed space).
#[test]
fn multi_shard_seeds_differ() {
    let a = run_sharded(tiny(Scheme::NetRsIlp, 11), 4);
    let b = run_sharded(tiny(Scheme::NetRsIlp, 12), 4);
    assert_ne!(
        a.latency, b.latency,
        "different seeds must produce different runs"
    );
}

/// The multi-seed fan-out on the sharded path serializes to the same
/// bytes as running each seed alone — thread scheduling must not leak
/// into results (the sharded extension of the `run_seeds`
/// parallel-matches-sequential property).
#[test]
fn run_seeds_sharded_parallel_matches_sequential_runs() {
    let cfg = tiny(Scheme::NetRsToR, 0);
    let parallel = run_seeds_sharded(&cfg, 4, &SEEDS);
    for (&seed, p) in SEEDS.iter().zip(&parallel) {
        let mut one = cfg.clone();
        one.seed = seed;
        let s = run_sharded(one, 4);
        assert_eq!(
            stats_json(p),
            stats_json(&s),
            "seed {seed}: parallel and sequential sharded runs diverged"
        );
    }
    // And with one shard the fan-out agrees with the sequential-engine
    // fan-out, closing the loop between the two runners.
    let one_shard = run_seeds_sharded(&cfg, 1, &SEEDS);
    let sequential = run_seeds(&cfg, &SEEDS);
    for ((&seed, a), b) in SEEDS.iter().zip(&one_shard).zip(&sequential) {
        assert_eq!(
            stats_json(a),
            stats_json(b),
            "seed {seed}: one-shard fan-out diverged from sequential fan-out"
        );
    }
}
