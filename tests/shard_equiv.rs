//! Sharded-engine equivalence tests.
//!
//! The shard refactor's acceptance contract (DESIGN.md §13): driving the
//! cluster through [`netrs_sim::run_sharded`] with one shard must be
//! **byte-identical** to the sequential engine — same `RunStats`, same
//! request-trace JSONL, same device telemetry — for every scheme, and
//! multi-shard runs must be deterministic per seed (run twice, get the
//! same bytes) even though their within-window event order differs from
//! the sequential engine's.

use std::io::Write;
use std::sync::{Arc, Mutex};

use netrs_sim::{
    run, run_observed, run_observed_sharded, run_observed_sharded_parallel, run_seeds,
    run_seeds_sharded, run_sharded, run_sharded_parallel, ObsOptions, ParallelOptions, Scheme,
    SimConfig,
};
use proptest::prelude::*;

/// A `Write` sink the test can inspect after the run consumed the box.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take_string(&self) -> String {
        let bytes = std::mem::take(&mut *self.0.lock().unwrap());
        String::from_utf8(bytes).expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const SEEDS: [u64; 3] = [11, 12, 13];

fn tiny(scheme: Scheme, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.requests = 1_500;
    cfg.scheme = scheme;
    cfg.seed = seed;
    cfg
}

fn stats_json(stats: &netrs_sim::RunStats) -> String {
    serde_json::to_string_pretty(stats).expect("stats serialize")
}

/// One shard, no observers: `RunStats` byte-identical to the sequential
/// engine for all four schemes and three seeds.
#[test]
fn one_shard_stats_match_sequential_for_all_schemes() {
    for scheme in Scheme::ALL {
        for seed in SEEDS {
            let sequential = run(tiny(scheme, seed));
            let sharded = run_sharded(tiny(scheme, seed), 1);
            assert_eq!(
                stats_json(&sequential),
                stats_json(&sharded),
                "{scheme:?} seed {seed}: one-shard run diverged from sequential"
            );
        }
    }
}

/// One shard with the full observer set attached: the trace JSONL and
/// device telemetry are byte-identical too, so downstream artifact
/// diffs cannot tell the engines apart.
#[test]
fn one_shard_trace_and_devices_match_sequential() {
    for scheme in Scheme::ALL {
        let observed = |sharded: Option<u32>| {
            let sink = SharedBuf::default();
            let obs = ObsOptions {
                trace: Some(Box::new(sink.clone())),
                trace_hops: true,
                device_stats: true,
                ..ObsOptions::default()
            };
            let cfg = tiny(scheme, 11);
            let out = match sharded {
                Some(shards) => run_observed_sharded(cfg, shards, obs),
                None => run_observed(cfg, obs),
            };
            let report = out.devices.expect("device stats requested");
            let devices: String = report
                .records
                .iter()
                .map(|r| {
                    let mut line = serde_json::to_string(r).expect("device record serialize");
                    line.push('\n');
                    line
                })
                .collect();
            (stats_json(&out.stats), sink.take_string(), devices)
        };
        let (seq_stats, seq_trace, seq_devices) = observed(None);
        let (sh_stats, sh_trace, sh_devices) = observed(Some(1));
        assert_eq!(seq_stats, sh_stats, "{scheme:?}: stats diverged");
        assert_eq!(seq_trace, sh_trace, "{scheme:?}: trace JSONL diverged");
        assert_eq!(
            seq_devices, sh_devices,
            "{scheme:?}: device report diverged"
        );
    }
}

/// Multi-shard runs are deterministic: the same seed produces the same
/// bytes run after run, for every scheme, and the workload still
/// completes.
#[test]
fn multi_shard_runs_are_deterministic_per_seed() {
    for scheme in Scheme::ALL {
        for seed in SEEDS {
            let a = run_sharded(tiny(scheme, seed), 4);
            let b = run_sharded(tiny(scheme, seed), 4);
            assert_eq!(
                stats_json(&a),
                stats_json(&b),
                "{scheme:?} seed {seed}: multi-shard run not reproducible"
            );
            assert_eq!(a.completed, 1_500, "{scheme:?} seed {seed}: work lost");
        }
    }
}

/// Different seeds still produce different multi-shard runs (the
/// per-shard RNG split must not collapse the seed space).
#[test]
fn multi_shard_seeds_differ() {
    let a = run_sharded(tiny(Scheme::NetRsIlp, 11), 4);
    let b = run_sharded(tiny(Scheme::NetRsIlp, 12), 4);
    assert_ne!(
        a.latency, b.latency,
        "different seeds must produce different runs"
    );
}

/// Runs one parallel sharded run with trace + control sinks attached and
/// returns `(stats JSON, trace JSONL, control JSONL)`.
fn parallel_observed(
    cfg: SimConfig,
    shards: u32,
    par: ParallelOptions,
    devices: bool,
) -> (String, String, String) {
    let trace = SharedBuf::default();
    let control = SharedBuf::default();
    let obs = ObsOptions {
        trace: Some(Box::new(trace.clone())),
        control: Some(Box::new(control.clone())),
        trace_hops: devices,
        device_stats: devices,
        ..ObsOptions::default()
    };
    let out = run_observed_sharded_parallel(cfg, shards, par, obs);
    (
        stats_json(&out.stats),
        trace.take_string(),
        control.take_string(),
    )
}

/// The tentpole acceptance invariant: for all four schemes, a
/// `--shards 4 --threads 4` run is byte-identical to `--shards 4
/// --threads 1` — RunStats, trace JSONL, and control JSONL. Client-side
/// schemes exercise the SPMD replica engine (true concurrency);
/// in-network schemes exercise the sequential-window fallback.
#[test]
fn four_threads_byte_identical_to_one_thread_for_all_schemes() {
    for scheme in Scheme::ALL {
        for seed in SEEDS {
            let par = |threads| ParallelOptions {
                threads,
                ..ParallelOptions::default()
            };
            let one = parallel_observed(tiny(scheme, seed), 4, par(1), false);
            let four = parallel_observed(tiny(scheme, seed), 4, par(4), false);
            assert_eq!(one.0, four.0, "{scheme:?} seed {seed}: stats diverged");
            assert_eq!(one.1, four.1, "{scheme:?} seed {seed}: trace diverged");
            assert_eq!(one.2, four.2, "{scheme:?} seed {seed}: control diverged");
        }
    }
}

/// Same invariant with the device probe and hop tracing attached (which
/// routes every scheme through the fallback engine): stats, trace, and
/// control still thread-invariant, and the device report too.
#[test]
fn four_threads_byte_identical_with_device_stats() {
    for scheme in Scheme::ALL {
        let par = |threads| ParallelOptions {
            threads,
            ..ParallelOptions::default()
        };
        let one = parallel_observed(tiny(scheme, 11), 4, par(1), true);
        let four = parallel_observed(tiny(scheme, 11), 4, par(4), true);
        assert_eq!(one, four, "{scheme:?}: instrumented output diverged");
    }
}

/// One shard through the parallel entry point is still the sequential
/// engine, byte for byte.
#[test]
fn one_shard_parallel_matches_sequential_engine() {
    for scheme in Scheme::ALL {
        let sequential = run(tiny(scheme, 12));
        let parallel = run_sharded_parallel(tiny(scheme, 12), 1, 4);
        assert_eq!(
            stats_json(&sequential),
            stats_json(&parallel),
            "{scheme:?}: one-shard parallel run diverged from sequential"
        );
    }
}

/// The replica engine completes the workload, reports the window
/// accounting, and never trips the mailbox at the default (provably
/// safe) 1× lookahead.
#[test]
fn replica_engine_completes_with_clean_window_accounting() {
    let stats = run_sharded_parallel(tiny(Scheme::CliRs, 11), 4, 2);
    assert_eq!(stats.completed, 1_500, "work lost in replica mode");
    let par = stats
        .parallel
        .expect("multi-shard run reports window stats");
    assert_eq!(par.shards, 4);
    assert!(par.windows > 0, "window driver reported no windows");
    assert!(par.mailbox_posted > 0, "cross-shard traffic must exist");
    assert_eq!(par.mailbox_late, 0, "1x lookahead must never clamp");
}

/// A deliberately wide lookahead trips `mailbox_late`: cross-pod flows
/// traverse at least 6 links (host–ToR–agg–core–agg–ToR–host), so any
/// multiplier above that makes some posts land inside an already-drained
/// window. They are clamped and counted — never a panic, still
/// thread-invariant, and the workload still completes.
#[test]
fn wide_lookahead_clamps_late_posts_and_still_completes() {
    let par = |threads| ParallelOptions {
        threads,
        lookahead_mult: 50,
    };
    let cfg = || tiny(Scheme::CliRs, 13);
    let one = run_observed_sharded_parallel(cfg(), 4, par(1), ObsOptions::default()).stats;
    let four = run_observed_sharded_parallel(cfg(), 4, par(4), ObsOptions::default()).stats;
    assert_eq!(
        stats_json(&one),
        stats_json(&four),
        "clamped schedule must still be thread-invariant"
    );
    assert_eq!(one.completed, 1_500, "work lost under wide lookahead");
    let p = one.parallel.expect("window stats present");
    assert!(
        p.mailbox_late > 0,
        "50x lookahead over 6-link flows must clamp some posts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite property: a parallel N-shard run equals the
    /// sequential-windowed N-shard run (threads = 1 of the same engine)
    /// under random seed, scheme, shard count, thread count, and write
    /// fraction.
    #[test]
    fn parallel_equals_sequential_windowed(
        seed in 0u64..1_000,
        scheme_idx in 0usize..4,
        shards in 2u32..5,
        threads in 2usize..5,
        write_pct in 0u32..3,
    ) {
        let mut cfg = tiny(Scheme::ALL[scheme_idx], seed);
        cfg.requests = 400;
        cfg.write_fraction = f64::from(write_pct) * 0.1;
        let par = |threads| ParallelOptions { threads, ..ParallelOptions::default() };
        let a = run_observed_sharded_parallel(
            cfg.clone(), shards, par(1), ObsOptions::default()).stats;
        let b = run_observed_sharded_parallel(
            cfg, shards, par(threads), ObsOptions::default()).stats;
        prop_assert_eq!(stats_json(&a), stats_json(&b));
        prop_assert_eq!(a.completed, 400);
    }
}

/// The multi-seed fan-out on the sharded path serializes to the same
/// bytes as running each seed alone — thread scheduling must not leak
/// into results (the sharded extension of the `run_seeds`
/// parallel-matches-sequential property).
#[test]
fn run_seeds_sharded_parallel_matches_sequential_runs() {
    let cfg = tiny(Scheme::NetRsToR, 0);
    let parallel = run_seeds_sharded(&cfg, 4, &SEEDS);
    for (&seed, p) in SEEDS.iter().zip(&parallel) {
        let mut one = cfg.clone();
        one.seed = seed;
        let s = run_sharded(one, 4);
        assert_eq!(
            stats_json(p),
            stats_json(&s),
            "seed {seed}: parallel and sequential sharded runs diverged"
        );
    }
    // And with one shard the fan-out agrees with the sequential-engine
    // fan-out, closing the loop between the two runners.
    let one_shard = run_seeds_sharded(&cfg, 1, &SEEDS);
    let sequential = run_seeds(&cfg, &SEEDS);
    for ((&seed, a), b) in SEEDS.iter().zip(&one_shard).zip(&sequential) {
        assert_eq!(
            stats_json(a),
            stats_json(b),
            "seed {seed}: one-shard fan-out diverged from sequential fan-out"
        );
    }
}
