//! Allocation-tracking integration test (requires the `alloc-profile`
//! feature). Lives in its own test binary because registering a global
//! allocator is process-wide.

use netrs_allocprobe::CountingAllocator;
use netrs_sim::{run_observed, ObsOptions, PerfOptions, Scheme, SimConfig};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn perf_profile_reports_allocation_counters_when_allocator_registered() {
    let mut cfg = SimConfig::small();
    cfg.requests = 2_000;
    cfg.scheme = Scheme::NetRsIlp;
    cfg.seed = 7;
    let obs = ObsOptions {
        perf: Some(PerfOptions::default()),
        ..ObsOptions::default()
    };
    let out = run_observed(cfg, obs);
    let perf = out.perf.expect("perf profile requested");
    let alloc = perf
        .alloc
        .expect("counting allocator is registered, so alloc stats must be present");
    // Building the cluster allocates (topology, dense tables, policy).
    assert!(alloc.allocs > 0, "{alloc:?}");
    assert!(alloc.deallocs > 0, "{alloc:?}");
    assert!(alloc.peak_bytes > 0, "{alloc:?}");
    // The serialized profile carries the alloc block.
    let json = serde_json::to_string(&perf).unwrap();
    assert!(json.contains("\"alloc\""), "{json}");
    assert!(json.contains("\"peak_bytes\""), "{json}");
}

#[test]
fn hot_loop_allocation_rate_is_bounded() {
    // The hot-path overhaul proved the steady-state loop allocation-free
    // per event; the counting allocator must agree at whole-run scale —
    // allocations amortize to (well under) one per event.
    let mut cfg = SimConfig::small();
    cfg.requests = 5_000;
    cfg.scheme = Scheme::CliRs;
    cfg.seed = 1;
    let obs = ObsOptions {
        perf: Some(PerfOptions::default()),
        ..ObsOptions::default()
    };
    let out = run_observed(cfg, obs);
    let perf = out.perf.unwrap();
    let alloc = perf.alloc.unwrap();
    assert!(
        alloc.allocs < perf.events,
        "allocs {} should amortize below one per event ({})",
        alloc.allocs,
        perf.events
    );
}
