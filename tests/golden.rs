//! Golden-file tests for the observability JSONL schemas.
//!
//! Offline tooling (`netrs-analyze`, notebooks, CI diffs) parses these
//! lines by key, so the exact serialized form — key names, key order,
//! number formatting, and the optionality of `hops` — is a public
//! contract. These tests pin it byte for byte: a failing golden here
//! means a schema break that every downstream consumer will see.

use netrs_sim::{
    ControlRecord, DeviceRecord, DisplacedGroup, DrsSpanRecord, HopSpan, PlanEventRecord,
    SamplePoint, SnapshotGroup, SnapshotRecord, SolveRecord, TraceRecord,
};

fn trace_record() -> TraceRecord {
    TraceRecord {
        req: 42,
        server: 3,
        first: true,
        write: false,
        issued_ns: 1_000,
        received_ns: 601_000,
        steer_ns: 90_000,
        selection_ns: 40_000,
        selection_wait_ns: 10_000,
        to_server_ns: 60_000,
        server_queue_ns: 0,
        service_ns: 350_000,
        reply_ns: 60_000,
        e2e_ns: 600_000,
        hops: Vec::new(),
    }
}

#[test]
fn trace_record_without_hops_matches_golden() {
    let golden = concat!(
        "{\"req\":42,\"server\":3,\"first\":true,\"write\":false,",
        "\"issued_ns\":1000,\"received_ns\":601000,",
        "\"steer_ns\":90000,\"selection_ns\":40000,\"selection_wait_ns\":10000,",
        "\"to_server_ns\":60000,\"server_queue_ns\":0,\"service_ns\":350000,",
        "\"reply_ns\":60000,\"e2e_ns\":600000}"
    );
    let record = trace_record();
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: TraceRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);
}

#[test]
fn trace_record_with_hops_matches_golden() {
    let mut record = trace_record();
    record.hops = vec![
        HopSpan {
            dev: "client:0".into(),
            arrive_ns: 1_000,
            depart_ns: 1_000,
        },
        HopSpan {
            dev: "link:h0>s0".into(),
            arrive_ns: 1_000,
            depart_ns: 31_000,
        },
    ];
    let golden = concat!(
        "{\"req\":42,\"server\":3,\"first\":true,\"write\":false,",
        "\"issued_ns\":1000,\"received_ns\":601000,",
        "\"steer_ns\":90000,\"selection_ns\":40000,\"selection_wait_ns\":10000,",
        "\"to_server_ns\":60000,\"server_queue_ns\":0,\"service_ns\":350000,",
        "\"reply_ns\":60000,\"e2e_ns\":600000,\"hops\":[",
        "{\"dev\":\"client:0\",\"arrive_ns\":1000,\"depart_ns\":1000},",
        "{\"dev\":\"link:h0>s0\",\"arrive_ns\":1000,\"depart_ns\":31000}]}"
    );
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: TraceRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);
}

#[test]
fn sample_point_matches_golden() {
    let point = SamplePoint {
        t_ns: 5_000_000,
        accel_util: 0.5,
        server_occupancy: 0.25,
        outstanding: 12.0,
        drs_groups: 0.0,
    };
    let golden = concat!(
        "{\"t_ns\":5000000,\"accel_util\":0.5,\"server_occupancy\":0.25,",
        "\"outstanding\":12,\"drs_groups\":0}"
    );
    assert_eq!(serde_json::to_string(&point).unwrap(), golden);
    let back: SamplePoint = serde_json::from_str(golden).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), golden);
}

#[test]
fn device_record_matches_golden() {
    let record = DeviceRecord {
        dev: "link:h3>s0".into(),
        kind: "link".into(),
        tier: 2,
        packets: [10, 20, 30],
        bytes: [130, 260, 390],
        ops: 0,
        selections: 0,
        mean_selection_wait_ns: 0,
        clone_updates: 0,
        busy_ns: 1_800_000,
        utilization: 0.5,
        mean_queue_depth: 0.0,
        max_queue_depth: 0,
        drops: 0,
        clamps: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_stale_hits: 0,
        cache_evictions: 0,
        cache_invalidations: 0,
    };
    let golden = concat!(
        "{\"dev\":\"link:h3>s0\",\"kind\":\"link\",\"tier\":2,",
        "\"packets\":[10,20,30],\"bytes\":[130,260,390],",
        "\"ops\":0,\"selections\":0,\"mean_selection_wait_ns\":0,",
        "\"clone_updates\":0,\"busy_ns\":1800000,\"utilization\":0.5,",
        "\"mean_queue_depth\":0,\"max_queue_depth\":0,\"drops\":0,\"clamps\":0}"
    );
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: DeviceRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);

    // With cache traffic the five counters are appended, in order.
    let cached = DeviceRecord {
        dev: "switch:5".into(),
        kind: "switch".into(),
        cache_hits: 40,
        cache_misses: 9,
        cache_stale_hits: 2,
        cache_evictions: 3,
        cache_invalidations: 7,
        ..record
    };
    let golden_cached = concat!(
        "{\"dev\":\"switch:5\",\"kind\":\"switch\",\"tier\":2,",
        "\"packets\":[10,20,30],\"bytes\":[130,260,390],",
        "\"ops\":0,\"selections\":0,\"mean_selection_wait_ns\":0,",
        "\"clone_updates\":0,\"busy_ns\":1800000,\"utilization\":0.5,",
        "\"mean_queue_depth\":0,\"max_queue_depth\":0,\"drops\":0,\"clamps\":0,",
        "\"cache_hits\":40,\"cache_misses\":9,\"cache_stale_hits\":2,",
        "\"cache_evictions\":3,\"cache_invalidations\":7}"
    );
    assert_eq!(serde_json::to_string(&cached).unwrap(), golden_cached);
    let back: DeviceRecord = serde_json::from_str(golden_cached).unwrap();
    assert_eq!(back, cached);
}

#[test]
fn control_snapshot_record_matches_golden() {
    let record = SnapshotRecord {
        tor: 2,
        pod: 1,
        from_ns: 500_000_000,
        to_ns: 1_000_000_000,
        groups: vec![
            SnapshotGroup {
                group: 0,
                counts: [4, 10, 86],
                rates: [8.0, 20.0, 172.0],
            },
            SnapshotGroup {
                group: 3,
                counts: [0, 0, 25],
                rates: [0.0, 0.0, 50.0],
            },
        ],
    };
    let golden = concat!(
        "{\"kind\":\"snapshot\",\"tor\":2,\"pod\":1,",
        "\"from_ns\":500000000,\"to_ns\":1000000000,\"groups\":[",
        "{\"group\":0,\"counts\":[4,10,86],\"rates\":[8,20,172]},",
        "{\"group\":3,\"counts\":[0,0,25],\"rates\":[0,0,50]}]}"
    );
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: SnapshotRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);
    // The tagged enum parses the same line via its `kind` discriminant.
    let tagged: ControlRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(tagged, ControlRecord::Snapshot(record));
}

#[test]
fn control_plan_record_matches_golden() {
    let record = PlanEventRecord {
        t_ns: 1_500_000_000,
        trigger: "replan".into(),
        switch: None,
        solve: Some(SolveRecord {
            greedy: false,
            variables: 52,
            constraints: 42,
            lp_iterations: 13_766,
            branch_nodes: 200,
            objective: 4.0,
        }),
        reassigned: vec![2],
        newly_assigned: vec![5],
        unassigned: Vec::new(),
        rsnodes_added: vec![16],
        rsnodes_removed: vec![3],
        rsnodes: 4,
        drs_groups: 0,
        rules_recompiled: 20,
    };
    let golden = concat!(
        "{\"kind\":\"plan\",\"t_ns\":1500000000,\"trigger\":\"replan\",",
        "\"solve\":{\"greedy\":false,\"variables\":52,\"constraints\":42,",
        "\"lp_iterations\":13766,\"branch_nodes\":200,\"objective\":4},",
        "\"reassigned\":[2],\"newly_assigned\":[5],\"unassigned\":[],",
        "\"rsnodes_added\":[16],\"rsnodes_removed\":[3],",
        "\"rsnodes\":4,\"drs_groups\":0,\"rules_recompiled\":20}"
    );
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: PlanEventRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);

    // Fault triggers carry the operator switch and no solve block; both
    // optional keys must be omitted entirely, never serialized as null.
    let record = PlanEventRecord {
        t_ns: 2_000_000_000,
        trigger: "operator_fail".into(),
        switch: Some(16),
        solve: None,
        reassigned: Vec::new(),
        newly_assigned: Vec::new(),
        unassigned: vec![5, 6],
        rsnodes_added: Vec::new(),
        rsnodes_removed: vec![16],
        rsnodes: 4,
        drs_groups: 2,
        rules_recompiled: 20,
    };
    let golden = concat!(
        "{\"kind\":\"plan\",\"t_ns\":2000000000,\"trigger\":\"operator_fail\",",
        "\"switch\":16,",
        "\"reassigned\":[],\"newly_assigned\":[],\"unassigned\":[5,6],",
        "\"rsnodes_added\":[],\"rsnodes_removed\":[16],",
        "\"rsnodes\":4,\"drs_groups\":2,\"rules_recompiled\":20}"
    );
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: PlanEventRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);
}

#[test]
fn control_drs_span_record_matches_golden() {
    let record = DrsSpanRecord {
        switch: 16,
        fail_ns: 1_200_000_000,
        detect_ns: Some(1_210_000_000),
        recover_ns: Some(2_000_000_000),
        groups: vec![
            DisplacedGroup {
                group: 5,
                displaced_ns: 390_000_000,
            },
            DisplacedGroup {
                group: 6,
                displaced_ns: 790_000_000,
            },
        ],
    };
    let golden = concat!(
        "{\"kind\":\"drs_span\",\"switch\":16,\"fail_ns\":1200000000,",
        "\"detect_ns\":1210000000,\"recover_ns\":2000000000,\"groups\":[",
        "{\"group\":5,\"displaced_ns\":390000000},",
        "{\"group\":6,\"displaced_ns\":790000000}]}"
    );
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: DrsSpanRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);

    // A run that ends mid-episode omits the unreached timestamps.
    let record = DrsSpanRecord {
        switch: 16,
        fail_ns: 1_200_000_000,
        detect_ns: None,
        recover_ns: None,
        groups: Vec::new(),
    };
    let golden = "{\"kind\":\"drs_span\",\"switch\":16,\"fail_ns\":1200000000,\"groups\":[]}";
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: DrsSpanRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);
}

/// The two tier classifications in the codebase must agree: the
/// topology's path-based [`path_tier`] (what the device registry tags
/// packets with) and the monitor's marker-based [`Monitor::classify`]
/// (what the controller's T matrix is built from). On a default
/// host-to-host path they are the same classification by construction —
/// for every host pair and any ECMP hash.
///
/// [`path_tier`]: netrs_topology::FatTree::path_tier
/// [`Monitor::classify`]: netrs_netdev::Monitor::classify
#[test]
fn path_tier_agrees_with_monitor_classify_for_all_host_pairs() {
    use netrs_netdev::Monitor;
    use netrs_topology::{FatTree, Tier};
    use netrs_wire::SourceMarker;

    let topo = FatTree::new(4).unwrap();
    let marker = |h| SourceMarker {
        pod: topo.pod_of_host(h) as u16,
        rack: topo.rack_of_host(h) as u16,
    };
    for a in topo.hosts() {
        for b in topo.hosts() {
            if a == b {
                continue;
            }
            for hash in [0u64, 7, 13, 0xdead_beef] {
                let path = topo.path(a, b, hash);
                let tier_index = match topo.path_tier(&path) {
                    Tier::Core => 0,
                    Tier::Agg => 1,
                    Tier::Tor => 2,
                };
                assert_eq!(
                    tier_index,
                    Monitor::classify(marker(a), marker(b)),
                    "hosts {a:?} -> {b:?}, hash {hash}"
                );
            }
        }
    }
}
