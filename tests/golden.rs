//! Golden-file tests for the observability JSONL schemas.
//!
//! Offline tooling (`netrs-analyze`, notebooks, CI diffs) parses these
//! lines by key, so the exact serialized form — key names, key order,
//! number formatting, and the optionality of `hops` — is a public
//! contract. These tests pin it byte for byte: a failing golden here
//! means a schema break that every downstream consumer will see.

use netrs_sim::{DeviceRecord, HopSpan, SamplePoint, TraceRecord};

fn trace_record() -> TraceRecord {
    TraceRecord {
        req: 42,
        server: 3,
        first: true,
        write: false,
        issued_ns: 1_000,
        received_ns: 601_000,
        steer_ns: 90_000,
        selection_ns: 40_000,
        selection_wait_ns: 10_000,
        to_server_ns: 60_000,
        server_queue_ns: 0,
        service_ns: 350_000,
        reply_ns: 60_000,
        e2e_ns: 600_000,
        hops: Vec::new(),
    }
}

#[test]
fn trace_record_without_hops_matches_golden() {
    let golden = concat!(
        "{\"req\":42,\"server\":3,\"first\":true,\"write\":false,",
        "\"issued_ns\":1000,\"received_ns\":601000,",
        "\"steer_ns\":90000,\"selection_ns\":40000,\"selection_wait_ns\":10000,",
        "\"to_server_ns\":60000,\"server_queue_ns\":0,\"service_ns\":350000,",
        "\"reply_ns\":60000,\"e2e_ns\":600000}"
    );
    let record = trace_record();
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: TraceRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);
}

#[test]
fn trace_record_with_hops_matches_golden() {
    let mut record = trace_record();
    record.hops = vec![
        HopSpan {
            dev: "client:0".into(),
            arrive_ns: 1_000,
            depart_ns: 1_000,
        },
        HopSpan {
            dev: "link:h0>s0".into(),
            arrive_ns: 1_000,
            depart_ns: 31_000,
        },
    ];
    let golden = concat!(
        "{\"req\":42,\"server\":3,\"first\":true,\"write\":false,",
        "\"issued_ns\":1000,\"received_ns\":601000,",
        "\"steer_ns\":90000,\"selection_ns\":40000,\"selection_wait_ns\":10000,",
        "\"to_server_ns\":60000,\"server_queue_ns\":0,\"service_ns\":350000,",
        "\"reply_ns\":60000,\"e2e_ns\":600000,\"hops\":[",
        "{\"dev\":\"client:0\",\"arrive_ns\":1000,\"depart_ns\":1000},",
        "{\"dev\":\"link:h0>s0\",\"arrive_ns\":1000,\"depart_ns\":31000}]}"
    );
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: TraceRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);
}

#[test]
fn sample_point_matches_golden() {
    let point = SamplePoint {
        t_ns: 5_000_000,
        accel_util: 0.5,
        server_occupancy: 0.25,
        outstanding: 12.0,
        drs_groups: 0.0,
    };
    let golden = concat!(
        "{\"t_ns\":5000000,\"accel_util\":0.5,\"server_occupancy\":0.25,",
        "\"outstanding\":12,\"drs_groups\":0}"
    );
    assert_eq!(serde_json::to_string(&point).unwrap(), golden);
    let back: SamplePoint = serde_json::from_str(golden).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), golden);
}

#[test]
fn device_record_matches_golden() {
    let record = DeviceRecord {
        dev: "link:h3>s0".into(),
        kind: "link".into(),
        tier: 2,
        packets: [10, 20, 30],
        bytes: [130, 260, 390],
        ops: 0,
        selections: 0,
        mean_selection_wait_ns: 0,
        clone_updates: 0,
        busy_ns: 1_800_000,
        utilization: 0.5,
        mean_queue_depth: 0.0,
        max_queue_depth: 0,
        drops: 0,
        clamps: 0,
    };
    let golden = concat!(
        "{\"dev\":\"link:h3>s0\",\"kind\":\"link\",\"tier\":2,",
        "\"packets\":[10,20,30],\"bytes\":[130,260,390],",
        "\"ops\":0,\"selections\":0,\"mean_selection_wait_ns\":0,",
        "\"clone_updates\":0,\"busy_ns\":1800000,\"utilization\":0.5,",
        "\"mean_queue_depth\":0,\"max_queue_depth\":0,\"drops\":0,\"clamps\":0}"
    );
    assert_eq!(serde_json::to_string(&record).unwrap(), golden);
    let back: DeviceRecord = serde_json::from_str(golden).unwrap();
    assert_eq!(back, record);
}

/// The two tier classifications in the codebase must agree: the
/// topology's path-based [`path_tier`] (what the device registry tags
/// packets with) and the monitor's marker-based [`Monitor::classify`]
/// (what the controller's T matrix is built from). On a default
/// host-to-host path they are the same classification by construction —
/// for every host pair and any ECMP hash.
///
/// [`path_tier`]: netrs_topology::FatTree::path_tier
/// [`Monitor::classify`]: netrs_netdev::Monitor::classify
#[test]
fn path_tier_agrees_with_monitor_classify_for_all_host_pairs() {
    use netrs_netdev::Monitor;
    use netrs_topology::{FatTree, Tier};
    use netrs_wire::SourceMarker;

    let topo = FatTree::new(4).unwrap();
    let marker = |h| SourceMarker {
        pod: topo.pod_of_host(h) as u16,
        rack: topo.rack_of_host(h) as u16,
    };
    for a in topo.hosts() {
        for b in topo.hosts() {
            if a == b {
                continue;
            }
            for hash in [0u64, 7, 13, 0xdead_beef] {
                let path = topo.path(a, b, hash);
                let tier_index = match topo.path_tier(&path) {
                    Tier::Core => 0,
                    Tier::Agg => 1,
                    Tier::Tor => 2,
                };
                assert_eq!(
                    tier_index,
                    Monitor::classify(marker(a), marker(b)),
                    "hosts {a:?} -> {b:?}, hash {hash}"
                );
            }
        }
    }
}
